"""Tests for the sharded serving core and the facade parity pin.

The headline guarantee of the serving refactor: the sharded
``RecommendationService`` is **bit-identical** to the pre-refactor
single-process implementation for every shard count.  The pin replays the
deterministic reference stream captured at the pre-refactor commit
(``benchmarks/service_parity_reference.json``) through the sharded facade
and requires the full observable summary -- every ticket id, hardware
choice, exploration flag, model coefficient, history row and pending set --
to match exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from benchmarks.capture_service_parity import (
    REFERENCE_PATH,
    build_reference_service,
    drive_reference_stream,
    run_reference_stream,
)
from repro.core import BanditWare, ModelSnapshot
from repro.hardware import ndp_catalog
from repro.integration import RecommendationService, ServiceShard, ShardMap


@pytest.fixture(scope="module")
def reference():
    return json.loads(REFERENCE_PATH.read_text())


class TestShardMap:
    def test_single_shard_maps_everything_to_zero(self):
        shard_map = ShardMap(1)
        assert [shard_map.shard_for(f"app-{i}") for i in range(20)] == [0] * 20

    def test_deterministic_across_instances(self):
        a, b = ShardMap(4), ShardMap(4)
        names = [f"app-{i:02d}" for i in range(50)]
        assert [a.shard_for(n) for n in names] == [b.shard_for(n) for n in names]

    def test_every_shard_owns_some_applications(self):
        shard_map = ShardMap(4)
        assignments = shard_map.assignments(f"app-{i:03d}" for i in range(200))
        assert set(assignments) == {0, 1, 2, 3}
        assert all(len(apps) > 0 for apps in assignments.values())
        assert sum(len(apps) for apps in assignments.values()) == 200

    def test_growing_the_ring_only_relocates_a_fraction(self):
        names = [f"app-{i:03d}" for i in range(200)]
        before = [ShardMap(3).shard_for(n) for n in names]
        after = [ShardMap(4).shard_for(n) for n in names]
        moved = sum(1 for b, a in zip(before, after) if b != a)
        # Consistent hashing moves ~1/n_shards of the keys, not all of them.
        assert moved < 120

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardMap(0)
        with pytest.raises(ValueError, match="n_replicas"):
            ShardMap(2, n_replicas=0)

    def test_len_is_shard_count(self):
        assert len(ShardMap(3)) == 3


class TestServiceShard:
    def _recommender(self):
        return BanditWare(catalog=ndp_catalog(), feature_names=["size"], seed=0)

    def test_adopt_and_serve(self):
        shard = ServiceShard(0)
        shard.adopt_application("alpha", self._recommender(), priority=2)
        assert shard.owns_application("alpha")
        assert shard.applications == ["alpha"]
        assert shard.priority_for("alpha") == 2
        recommendation = shard.recommend("alpha", {"size": 2.0})
        assert recommendation.hardware.name in {h.name for h in ndp_catalog()}

    def test_snapshot_is_copy_on_write(self):
        shard = ServiceShard(0)
        recommender = self._recommender()
        shard.adopt_application("alpha", recommender)
        first = shard.snapshot_for("alpha")
        assert shard.snapshot_for("alpha") is first  # cached until a mutation
        hardware = ndp_catalog()["H0"]
        shard.observe("alpha", {"size": 2.0}, hardware, 10.0)
        second = shard.snapshot_for("alpha")
        assert second is not first
        assert second.version > first.version

    def test_snapshot_arrays_are_immutable(self):
        shard = ServiceShard(0)
        shard.adopt_application("alpha", self._recommender())
        snapshot = shard.snapshot_for("alpha")
        assert isinstance(snapshot, ModelSnapshot)
        with pytest.raises(ValueError):
            snapshot.coefficients[0, 0] = 1.0

    def test_snapshot_predictions_match_live_models(self):
        shard = ServiceShard(0)
        recommender = self._recommender()
        shard.adopt_application("alpha", recommender)
        rng = np.random.default_rng(0)
        for _ in range(6):
            hardware = ndp_catalog()["H1"]
            shard.observe("alpha", {"size": float(rng.uniform(1, 8))}, hardware, float(rng.uniform(5, 50)))
        features = {"size": 3.0}
        snapshot = shard.snapshot_for("alpha")
        live = recommender.predict_runtimes(features)
        frozen = snapshot.predict_runtimes(features)
        assert set(live) == set(frozen)
        for arm in live:
            assert frozen[arm] == pytest.approx(live[arm])


class TestFacadeParity:
    """The sharded facade is bit-identical to the pre-refactor service."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
    def test_reference_stream_is_bit_identical(self, n_shards, reference):
        summary = json.loads(
            json.dumps(run_reference_stream(n_shards=n_shards, n_rounds=reference["n_rounds"]))
        )
        assert summary == reference["summary"]

    def test_shard_count_does_not_change_ticket_ids(self):
        one = run_reference_stream(n_shards=1, n_rounds=20)
        four = run_reference_stream(n_shards=4, n_rounds=20)
        assert [t["ticket_id"] for t in one["tickets"]] == [
            t["ticket_id"] for t in four["tickets"]
        ]


class TestShardTopologySurface:
    def test_shard_assignments_cover_all_applications(self):
        service, _ = build_reference_service(n_shards=3)
        assignments = service.shard_assignments()
        assert set(assignments) == {0, 1, 2}
        all_apps = [app for apps in assignments.values() for app in apps]
        assert sorted(all_apps) == ["alpha", "beta", "gamma"]
        for app in all_apps:
            assert app in assignments[service.shard_for(app)]

    def test_shard_for_matches_the_shard_map(self):
        service, _ = build_reference_service(n_shards=4)
        for app in ("alpha", "beta", "gamma"):
            assert service.shard_for(app) == service.shard_map.shard_for(app)

    def test_shard_for_unknown_application(self):
        service, _ = build_reference_service(n_shards=2)
        with pytest.raises(KeyError, match="no recommender"):
            service.shard_for("nope")

    def test_n_shards_property_and_default(self):
        service, _ = build_reference_service(n_shards=3)
        assert service.n_shards == 3
        assert len(service.shards) == 3
        default_service = RecommendationService(catalog=ndp_catalog())
        assert default_service.n_shards == 1

    def test_predict_runtimes_reads_the_snapshot(self):
        service, _ = build_reference_service(n_shards=2)
        features = {f: 2.0 for f in service.recommender_for("alpha").feature_names}
        frozen = service.predict_runtimes("alpha", features)
        live = service.recommender_for("alpha").predict_runtimes(features)
        for arm in live:
            assert frozen[arm] == pytest.approx(live[arm])
        snapshot = service.model_snapshot("alpha")
        assert snapshot.version == service.recommender_for("alpha").version


class TestTicketIdGeneration:
    """Ticket sequences are per-instance and deterministic (satellite fix)."""

    def test_independent_services_issue_independent_sequences(self):
        first, _ = build_reference_service()
        second, _ = build_reference_service()
        ticket_a = first.submit_workflow("alpha", {"x0": 1.0, "x1": 1.0})
        ticket_b = second.submit_workflow("alpha", {"x0": 1.0, "x1": 1.0})
        # The seed repo's itertools counter would have issued wf-2 here.
        assert ticket_a.ticket_id == "wf-000001"
        assert ticket_b.ticket_id == "wf-000001"

    def test_sequence_is_global_submission_order_across_shards(self):
        service, _ = build_reference_service(n_shards=4)
        ids = []
        for app in ("alpha", "beta", "gamma", "alpha", "gamma"):
            features = {f: 1.0 for f in service.recommender_for(app).feature_names}
            ids.append(service.submit_workflow(app, features).ticket_id)
        assert ids == [f"wf-{i:06d}" for i in range(1, 6)]


class TestDoubleCompletionRejected:
    def _submitted(self, n_shards=3):
        service, workloads = build_reference_service(n_shards=n_shards)
        features = {f: 1.0 for f in service.recommender_for("alpha").feature_names}
        ticket = service.submit_workflow("alpha", features)
        return service, ticket

    def test_single_completion_path(self):
        service, ticket = self._submitted()
        service.complete_workflow(ticket.ticket_id, 10.0)
        with pytest.raises(ValueError, match="already completed"):
            service.complete_workflow(ticket.ticket_id, 10.0)

    def test_error_names_the_first_observation(self):
        service, ticket = self._submitted()
        service.complete_workflow(ticket.ticket_id, 12.5)
        with pytest.raises(ValueError, match="12.5"):
            service.complete_workflow(ticket.ticket_id, 99.0)

    def test_batch_completion_path(self):
        service, ticket = self._submitted()
        service.complete_workflows([(ticket.ticket_id, 10.0)])
        with pytest.raises(ValueError, match="already completed"):
            service.complete_workflows([(ticket.ticket_id, 10.0)])


class TestCrossShardPreflight:
    """``complete_workflows`` validates across every shard before any mutates."""

    def _multi_shard_batch(self):
        service, workloads = build_reference_service(n_shards=4)
        tickets = []
        for app in ("alpha", "beta", "gamma"):
            features = {f: 1.0 for f in service.recommender_for(app).feature_names}
            tickets.append(service.submit_workflow(app, features))
        shards = {service.shard_for(t.application) for t in tickets}
        assert len(shards) > 1, "batch must span shards for this test to bite"
        return service, tickets

    def _state_fingerprint(self, service):
        return json.loads(
            json.dumps(
                {
                    app: {
                        "coefficients": service.recommender_for(app).coefficients(),
                        "counts": service.recommender_for(app).observation_counts(),
                    }
                    for app in ("alpha", "beta", "gamma")
                }
            )
        )

    @pytest.mark.parametrize(
        "bad_entry_for_last, match",
        [
            (lambda t: (t.ticket_id, float("nan")), "finite and non-negative"),
            (lambda t: (t.ticket_id, -1.0), "finite and non-negative"),
            (lambda t: (t.ticket_id, 10.0, float("inf")), "queue delay"),
            (lambda t: (t.ticket_id, 10.0, 0.0, 0.0), "slowdown"),
            (lambda t: ("wf-999999", 10.0), "unknown ticket"),
        ],
    )
    def test_bad_entry_on_one_shard_leaves_all_shards_untouched(
        self, bad_entry_for_last, match
    ):
        service, tickets = self._multi_shard_batch()
        before = self._state_fingerprint(service)
        batch = [(t.ticket_id, 10.0) for t in tickets[:-1]]
        batch.append(bad_entry_for_last(tickets[-1]))
        with pytest.raises((ValueError, KeyError), match=match):
            service.complete_workflows(batch)
        assert self._state_fingerprint(service) == before
        assert all(not t.completed for t in tickets)
        assert len(service.history) == len(
            service.history.records_for("beta")
        )  # only the warm-start rows
        # The batch is retryable after repairing the bad entry.
        service.complete_workflows([(t.ticket_id, 10.0) for t in tickets])
        assert all(t.completed for t in tickets)

    def test_duplicate_ticket_across_shards_rejected(self):
        service, tickets = self._multi_shard_batch()
        batch = [(t.ticket_id, 10.0) for t in tickets] + [(tickets[0].ticket_id, 10.0)]
        with pytest.raises(ValueError, match="appears twice"):
            service.complete_workflows(batch)
        assert all(not t.completed for t in tickets)


class TestCheckpointResumeAgainstReference:
    """Checkpoint -> restore mid-stream continues bit-identically (satellite c)."""

    def test_restored_service_finishes_the_reference_stream_identically(self, reference):
        # Drive the full stream on one service, and the same stream on a
        # service that is checkpoint/restored at every 20-round boundary;
        # the final summaries must match the pre-refactor reference exactly.
        from repro.integration import RecommendationService

        n_rounds = reference["n_rounds"]
        expected = reference["summary"]

        service, workloads = build_reference_service(n_shards=2)
        # drive_reference_stream derives all randomness from per-app RNGs it
        # creates itself, so split the stream by replaying with a fresh
        # service that round-trips through a checkpoint mid-way: rebuild the
        # stream driver inline with the same constants.
        summary = _drive_with_checkpoint_roundtrips(service, workloads, n_rounds, every=20)
        assert json.loads(json.dumps(summary)) == expected


def _drive_with_checkpoint_roundtrips(service, workloads, n_rounds, every):
    """Replay ``drive_reference_stream`` but swap in a restored copy every N rounds."""
    from benchmarks.capture_service_parity import _APPS, summarise_service
    from repro.integration import RecommendationService

    apps = [name for name, *_ in _APPS]
    feature_rng = {name: np.random.default_rng(100 + i) for i, name in enumerate(apps)}
    runtime_rng = {name: np.random.default_rng(200 + i) for i, name in enumerate(apps)}
    tickets_log = []
    for round_index in range(n_rounds):
        if round_index and round_index % every == 0:
            service = RecommendationService.restore(service.checkpoint())
        app = apps[round_index % len(apps)]
        workload = workloads[app]
        if round_index % 10 == 9:
            features = [workload.sample_features(feature_rng[app]) for _ in range(3)]
            tickets = service.submit_workflows(app, features)
        else:
            tickets = [service.submit_workflow(app, workload.sample_features(feature_rng[app]))]
        completions = []
        for ticket in tickets:
            runtime = workload.observed_runtime(
                ticket.features, ticket.recommendation.hardware, runtime_rng[app]
            )
            tickets_log.append(
                {
                    "ticket_id": ticket.ticket_id,
                    "application": app,
                    "hardware": ticket.recommendation.hardware.name,
                    "explored": bool(ticket.recommendation.explored),
                }
            )
            completions.append(
                (ticket.ticket_id, runtime, 0.1 * (round_index % 4), 1.0 + 0.05 * (round_index % 5))
            )
        if round_index % 13 == 7:
            continue
        if round_index % 2:
            service.complete_workflows(completions)
        else:
            for ticket_id, runtime, queue, slowdown in completions:
                service.complete_workflow(ticket_id, runtime, queue_seconds=queue, slowdown=slowdown)
    return summarise_service(service, tickets_log)
