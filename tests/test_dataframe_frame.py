"""Tests for repro.dataframe.frame."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, Series


@pytest.fixture
def df():
    return DataFrame(
        {
            "size": [100, 200, 300, 400],
            "runtime": [1.0, 2.0, 3.5, 4.0],
            "hardware": ["H0", "H1", "H0", "H1"],
        }
    )


class TestConstruction:
    def test_shape_and_columns(self, df):
        assert df.shape == (4, 3)
        assert df.columns == ["size", "runtime", "hardware"]

    def test_from_records(self):
        frame = DataFrame.from_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert frame.shape == (2, 2)

    def test_from_records_union_of_keys(self):
        frame = DataFrame.from_records([{"a": 1}, {"b": 2}])
        assert set(frame.columns) == {"a", "b"}

    def test_empty(self):
        frame = DataFrame({})
        assert frame.shape == (0, 0)

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_explicit_column_order(self):
        frame = DataFrame({"a": [1], "b": [2]}, columns=["b", "a"])
        assert frame.columns == ["b", "a"]

    def test_missing_column_in_data_rejected(self):
        with pytest.raises(KeyError):
            DataFrame({"a": [1]}, columns=["a", "z"])


class TestColumnAccess:
    def test_getitem_column(self, df):
        assert isinstance(df["size"], Series)
        assert df["size"].to_list() == [100, 200, 300, 400]

    def test_getitem_missing_column(self, df):
        with pytest.raises(KeyError, match="no column"):
            df["nope"]

    def test_getitem_list_selects(self, df):
        sub = df[["runtime", "size"]]
        assert sub.columns == ["runtime", "size"]

    def test_setitem_scalar_broadcasts(self, df):
        df["flag"] = 1
        assert df["flag"].to_list() == [1, 1, 1, 1]

    def test_setitem_length_mismatch(self, df):
        with pytest.raises(ValueError):
            df["bad"] = [1, 2]

    def test_setitem_series(self, df):
        df["double"] = df["runtime"] * 2
        assert df["double"].to_list() == [2.0, 4.0, 7.0, 8.0]

    def test_drop(self, df):
        out = df.drop("hardware")
        assert "hardware" not in out
        assert "hardware" in df  # original untouched

    def test_drop_missing(self, df):
        with pytest.raises(KeyError):
            df.drop("nope")

    def test_rename(self, df):
        out = df.rename({"size": "n"})
        assert "n" in out and "size" not in out

    def test_contains(self, df):
        assert "size" in df
        assert "nope" not in df


class TestRowAccess:
    def test_row(self, df):
        assert df.row(1) == {"size": 200, "runtime": 2.0, "hardware": "H1"}

    def test_row_negative_index(self, df):
        assert df.row(-1)["size"] == 400

    def test_row_out_of_range(self, df):
        with pytest.raises(IndexError):
            df.row(10)

    def test_iterrows(self, df):
        rows = list(df.iterrows())
        assert len(rows) == 4
        assert rows[0]["hardware"] == "H0"

    def test_head_tail(self, df):
        assert len(df.head(2)) == 2
        assert df.tail(1).row(0)["size"] == 400

    def test_take_reorders(self, df):
        out = df.take([2, 0])
        assert out["size"].to_list() == [300, 100]

    def test_filter_mask(self, df):
        out = df.filter(df["size"] > 150)
        assert len(out) == 3

    def test_filter_bad_mask_shape(self, df):
        with pytest.raises(ValueError):
            df.filter(np.array([True]))

    def test_getitem_boolean_mask(self, df):
        out = df[df["hardware"] == "H0"]
        assert len(out) == 2

    def test_sample_without_replacement(self, df):
        out = df.sample(3, np.random.default_rng(0))
        assert len(out) == 3

    def test_sample_too_many_raises(self, df):
        with pytest.raises(ValueError):
            df.sample(10, np.random.default_rng(0))

    def test_sample_with_replacement(self, df):
        out = df.sample(10, np.random.default_rng(0), replace=True)
        assert len(out) == 10

    def test_sort_values(self, df):
        out = df.sort_values("runtime", ascending=False)
        assert out["runtime"].to_list() == [4.0, 3.5, 2.0, 1.0]


class TestConversion:
    def test_to_dict(self, df):
        assert df.to_dict()["size"] == [100, 200, 300, 400]

    def test_to_records(self, df):
        assert df.to_records()[2]["runtime"] == 3.5

    def test_to_numpy_selected_columns(self, df):
        arr = df.to_numpy(["size", "runtime"])
        assert arr.shape == (4, 2)
        assert arr.dtype == float

    def test_to_numpy_empty_columns(self, df):
        assert df.to_numpy([]).shape == (4, 0)

    def test_copy_is_deep_for_values(self, df):
        cp = df.copy()
        cp["size"].values[0] = -1
        assert df["size"][0] == 100

    def test_describe(self, df):
        stats = df.describe()
        assert stats["size"]["count"] == 4
        assert "hardware" not in stats  # non-numeric skipped


class TestCombination:
    def test_assign(self, df):
        out = df.assign(cost=[1, 2, 3, 4])
        assert "cost" in out and "cost" not in df

    def test_append_rows(self, df):
        out = df.append_rows(df)
        assert len(out) == 8

    def test_append_rows_column_mismatch(self, df):
        other = DataFrame({"size": [1]})
        with pytest.raises(ValueError):
            df.append_rows(other)

    def test_apply_rows(self, df):
        s = df.apply_rows(lambda row: row["size"] / 100)
        assert s.to_list() == [1.0, 2.0, 3.0, 4.0]

    def test_groupby_returns_groups(self, df):
        gb = df.groupby("hardware")
        assert len(gb) == 2
