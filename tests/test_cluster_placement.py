"""Pluggable placement policies: the node-choice axis of scheduling.

Covers the policy unit behaviour, the scheduler/policy composition, the
exact FirstFit parity against pre-refactor reference values, the
deterministic BestFit tie-break, heterogeneous interference classes, and
the headline acceptance result (LeastSlowdown strictly beats Pack on the
interference-heavy scenario across seeds).
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.cluster import (
    AutoscalingNodePool,
    BackfillScheduler,
    BestFit,
    BestFitScheduler,
    ClusterSimulator,
    FIFOScheduler,
    FirstFit,
    LeastSlowdown,
    LinearSlowdown,
    NoInterference,
    Node,
    Pack,
    PlacementContext,
    PriorityScheduler,
    WorstFit,
    build_placement,
    PLACEMENT_POLICIES,
)
from repro.cluster.pod import Pod
from repro.evaluation.contention import (
    CONTENTION_SCENARIOS,
    build_scenario,
    run_scenario,
)
from repro.hardware import HardwareCatalog, HardwareConfig

from conftest import constant_workload as _constant_workload

_PARITY_PIN = Path(__file__).resolve().parent.parent / "benchmarks" / "placement_parity_reference.json"

_CATALOG = HardwareCatalog(
    [
        HardwareConfig("small", cpus=2, memory_gb=8),
        HardwareConfig("big", cpus=4, memory_gb=16),
    ]
)


def _pod(hw="small", name="p"):
    return Pod(name=name, request=_CATALOG[hw])


def _allocate(node, cpus, pods=0):
    """Occupy ``cpus`` of ``node`` with dummy allocations (2 CPUs each)."""
    for i in range(cpus // 2):
        node.allocate(f"filler-{node.name}-{i}", _CATALOG["small"])


# --------------------------------------------------------------------- #
class TestPlacementPolicies:
    def test_first_fit_takes_cluster_order(self):
        nodes = [Node("b", cpus=8, memory_gb=32), Node("a", cpus=8, memory_gb=32)]
        assert FirstFit().select(_pod(), nodes).name == "b"

    def test_none_when_nothing_fits(self):
        nodes = [Node("n", cpus=2, memory_gb=4)]
        for policy in (FirstFit(), BestFit(), WorstFit(), Pack(), LeastSlowdown()):
            assert policy.select(_pod("big"), nodes) is None

    def test_best_fit_takes_tightest_node(self):
        roomy = Node("roomy", cpus=16, memory_gb=64)
        tight = Node("tight", cpus=4, memory_gb=16)
        assert BestFit().select(_pod(), [roomy, tight]).name == "tight"

    def test_worst_fit_takes_emptiest_node(self):
        roomy = Node("roomy", cpus=16, memory_gb=64)
        tight = Node("tight", cpus=4, memory_gb=16)
        assert WorstFit().select(_pod(), [tight, roomy]).name == "roomy"

    def test_pack_takes_most_utilised_feasible_node(self):
        busy = Node("busy", cpus=8, memory_gb=32)
        _allocate(busy, 4)
        idle = Node("idle", cpus=8, memory_gb=32)
        assert Pack().select(_pod(), [idle, busy]).name == "busy"

    def test_pack_on_empty_cluster_matches_first_fit(self):
        nodes = [Node("n1", cpus=8, memory_gb=32), Node("n2", cpus=8, memory_gb=32)]
        assert Pack().select(_pod(), nodes).name == "n1"

    def test_least_slowdown_spreads_under_interference(self):
        busy = Node("busy", cpus=8, memory_gb=32)
        resident = _pod("big", name="resident")
        busy.allocate(resident.name, resident.request)
        idle = Node("idle", cpus=8, memory_gb=32)
        context = PlacementContext(
            interference=LinearSlowdown(alpha=1.0), running={"busy": [resident]}
        )
        assert LeastSlowdown().select(_pod(), [busy, idle], context).name == "idle"

    def test_least_slowdown_counts_co_resident_damage(self):
        # Placing next to a big resident hurts the *resident* more than
        # placing next to a small one, even if the pod's own slowdown would
        # tie: the policy sums everyone's post-placement slowdown.
        node_a = Node("a", cpus=8, memory_gb=32)
        node_b = Node("b", cpus=8, memory_gb=32)
        big = _pod("big", name="big-resident")
        small = _pod("small", name="small-resident")
        node_a.allocate(big.name, big.request)
        node_b.allocate(small.name, small.request)
        context = PlacementContext(
            interference=LinearSlowdown(alpha=1.0),
            running={"a": [big], "b": [small]},
        )
        assert LeastSlowdown().select(_pod(), [node_a, node_b], context).name == "b"

    def test_least_slowdown_without_context_degenerates_to_first_fit(self):
        nodes = [Node("n1", cpus=8, memory_gb=32), Node("n2", cpus=8, memory_gb=32)]
        assert LeastSlowdown().select(_pod(), nodes).name == "n1"

    def test_least_slowdown_under_null_model_is_first_fit_even_on_occupied_nodes(self):
        # Regression: the score is *excess* slowdown (1/speed - 1), so a
        # resident that causes no interference must not repel placement --
        # under NoInterference every node scores 0.0 and cluster order wins.
        busy = Node("busy", cpus=8, memory_gb=32)
        resident = _pod("big", name="resident")
        busy.allocate(resident.name, resident.request)
        idle = Node("idle", cpus=8, memory_gb=32)
        context = PlacementContext(
            interference=NoInterference(), running={"busy": [resident]}
        )
        assert LeastSlowdown().select(_pod(), [busy, idle], context).name == "busy"

    def test_least_slowdown_prefers_quiet_interference_class(self):
        noisy = Node("noisy", cpus=8, memory_gb=32, interference_class="io-noisy")
        quiet = Node("quiet", cpus=8, memory_gb=32, interference_class="numa-quiet")
        r1, r2 = _pod(name="r1"), _pod(name="r2")
        noisy.allocate(r1.name, r1.request)
        quiet.allocate(r2.name, r2.request)
        model = LinearSlowdown(alpha=1.0, class_weights={"io-noisy": 3.0, "numa-quiet": 0.1})
        context = PlacementContext(
            interference=model, running={"noisy": [r1], "quiet": [r2]}
        )
        assert LeastSlowdown().select(_pod(), [noisy, quiet], context).name == "quiet"

    def test_registry_and_aliases(self):
        assert set(PLACEMENT_POLICIES) == {
            "first-fit", "best-fit", "spread", "worst-fit", "pack", "least-slowdown",
        }
        assert isinstance(build_placement("spread"), WorstFit)
        assert isinstance(build_placement("worst-fit"), WorstFit)
        with pytest.raises(KeyError):
            build_placement("round-robin")

    def test_policies_are_picklable(self):
        for name in PLACEMENT_POLICIES:
            policy = build_placement(name)
            assert pickle.loads(pickle.dumps(policy)) == policy


class TestDeterministicBestFitTieBreak:
    """Equal-fit nodes must resolve on ``(leftover, node.name)`` -- never on
    cluster order -- so placement refactors cannot silently reorder them."""

    def _equal_nodes(self, *names):
        return [Node(name, cpus=8, memory_gb=32) for name in names]

    def test_equal_fit_resolves_by_name(self):
        assert BestFit().select(_pod(), self._equal_nodes("zeta", "alpha", "mid")).name == "alpha"

    def test_choice_is_independent_of_cluster_order(self):
        names = ["n-c", "n-a", "n-b"]
        import itertools

        choices = {
            BestFit().select(_pod(), self._equal_nodes(*order)).name
            for order in itertools.permutations(names)
        }
        assert choices == {"n-a"}

    def test_scheduler_inherits_the_tie_break(self):
        scheduler = BestFitScheduler()
        decision = scheduler.select_node(_pod(), self._equal_nodes("zz", "aa"))
        assert decision.node_name == "aa"
        assert decision.reason == "best-fit on remaining CPU"

    def test_leftover_still_dominates_name(self):
        tight = Node("zz-tight", cpus=4, memory_gb=16)
        roomy = Node("aa-roomy", cpus=16, memory_gb=64)
        assert BestFit().select(_pod(), [roomy, tight]).name == "zz-tight"


# --------------------------------------------------------------------- #
class TestSchedulerComposition:
    def test_default_placements(self):
        assert isinstance(FIFOScheduler().placement, FirstFit)
        assert isinstance(BackfillScheduler().placement, FirstFit)
        assert isinstance(PriorityScheduler().placement, FirstFit)
        assert isinstance(BestFitScheduler().placement, BestFit)

    def test_any_scheduler_composes_with_any_placement(self):
        nodes = [Node("n1", cpus=8, memory_gb=32), Node("n2", cpus=8, memory_gb=32)]
        _allocate(nodes[0], 2)
        for scheduler_cls in (FIFOScheduler, BackfillScheduler, BestFitScheduler):
            scheduler = scheduler_cls(placement=WorstFit())
            assert scheduler.select_node(_pod(), nodes).node_name == "n2"
        priority = PriorityScheduler(preemption=True, placement=Pack())
        assert priority.select_node(_pod(), nodes).node_name == "n1"
        assert priority.supports_preemption

    def test_decision_reasons_name_the_policy(self):
        nodes = [Node("n", cpus=8, memory_gb=32)]
        fifo = FIFOScheduler()
        assert fifo.select_node(_pod(), nodes).reason == "first node with sufficient capacity"
        spread = FIFOScheduler(placement=WorstFit())
        assert "spread" in spread.select_node(_pod(), nodes).reason

    def test_simulator_runs_with_interference_aware_placement(self):
        sim = ClusterSimulator(
            workload=_constant_workload({"small": 10.0, "big": 10.0}),
            catalog=_CATALOG,
            nodes=[Node("n1", cpus=8, memory_gb=32), Node("n2", cpus=8, memory_gb=32)],
            scheduler=FIFOScheduler(placement=LeastSlowdown()),
            seed=0,
            interference=LinearSlowdown(alpha=1.0),
        )
        for i in range(4):
            sim.submit({"x": 0.0}, "small", at_time=0.0)
        runs = sim.run_until_idle()
        assert len(runs) == 4
        # Interference-aware placement spreads 2+2, so nobody shares with
        # more than one co-resident and every run is equally mildly slowed.
        assert {run.node for run in runs} == {"n1", "n2"}

    def test_feasibility_cache_composes_with_placement(self):
        sim = ClusterSimulator(
            workload=_constant_workload({"small": 10.0, "big": 10.0}),
            catalog=_CATALOG,
            nodes=[Node("n1", cpus=2, memory_gb=8), Node("n2", cpus=8, memory_gb=32)],
            scheduler=FIFOScheduler(placement=WorstFit()),
            seed=0,
        )
        # big only ever fits n2; the probe runs the actual policy on
        # pristine clones, so the cache answers from total capacity.
        assert sim.feasible_node(_CATALOG["big"]).name == "n2"
        assert sim.request_feasible(_CATALOG["big"])

    def test_autoscaler_deficit_packing_uses_the_policy(self):
        pool = AutoscalingNodePool(
            node_cpus=8,
            node_memory_gb=32,
            max_nodes=4,
            provision_delay_seconds=5.0,
            scale_down_idle_seconds=None,
        )
        for placement in (None, WorstFit(), Pack(), LeastSlowdown()):
            sim = ClusterSimulator(
                workload=_constant_workload({"small": 10.0, "big": 10.0}),
                catalog=_CATALOG,
                nodes=[Node("base", cpus=2, memory_gb=8)],
                scheduler=FIFOScheduler(placement=placement),
                seed=0,
                autoscaler=pool,
                interference=LinearSlowdown(alpha=0.5),
            )
            # base fits nothing of size big: four big pods need 2 pool
            # nodes regardless of which bin the policy picks (a bin is
            # opened only when none fits).
            for i in range(4):
                sim.submit({"x": 0.0}, "big", at_time=0.0)
            runs = sim.run_until_idle()
            assert len(runs) == 4
            requested = [e for e in sim.scale_events if e.kind == "scale_up_requested"]
            assert len(requested) == 2


# --------------------------------------------------------------------- #
class TestNodeInterferenceClass:
    def test_default_and_custom_class(self):
        assert Node("n", cpus=2, memory_gb=4).interference_class == "standard"
        node = Node("n", cpus=2, memory_gb=4, interference_class="io-noisy")
        assert node.interference_class == "io-noisy"
        assert node.clone().interference_class == "io-noisy"

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            Node("n", cpus=2, memory_gb=4, interference_class="")

    def test_pool_template_carries_class(self):
        pool = AutoscalingNodePool(
            node_cpus=4, node_memory_gb=16, node_interference_class="cloud-noisy"
        )
        assert pool.template_node("autoscale-1").interference_class == "cloud-noisy"

    def test_linear_slowdown_class_weights(self):
        model = LinearSlowdown(alpha=1.0, class_weights={"quiet": 0.0, "noisy": 2.0})
        quiet = Node("q", cpus=8, memory_gb=32, interference_class="quiet")
        noisy = Node("n", cpus=8, memory_gb=32, interference_class="noisy")
        standard = Node("s", cpus=8, memory_gb=32)
        neighbour = [_pod("big", name="nb")]
        pod = _pod(name="me")
        # weight 0: no slowdown at all; weight 2: twice the standard alpha.
        assert model.speed(pod, quiet, neighbour) == 1.0
        assert model.speed(pod, noisy, neighbour) < model.speed(pod, standard, neighbour) < 1.0
        # unknown classes weigh 1.0 (the plain alpha).
        assert model.speed(pod, standard, neighbour) == LinearSlowdown(alpha=1.0).speed(
            pod, standard, neighbour
        )

    def test_class_weighted_model_keeps_solo_invariant_and_pickles(self):
        model = LinearSlowdown(alpha=2.0, class_weights={"noisy": 5.0})
        noisy = Node("n", cpus=8, memory_gb=32, interference_class="noisy")
        assert model.speed(_pod(), noisy, []) == 1.0
        clone = pickle.loads(pickle.dumps(model))
        assert clone == model
        assert clone.speed(_pod(), noisy, [_pod("big", name="nb")]) == model.speed(
            _pod(), noisy, [_pod("big", name="nb")]
        )
        with pytest.raises(ValueError):
            LinearSlowdown(alpha=1.0, class_weights={"noisy": -1.0})


# --------------------------------------------------------------------- #
class TestFirstFitExactParity:
    """The decoupled placement engine under default FirstFit must reproduce
    the pre-refactor engine bit for bit on every registered scenario."""

    def test_reference_file_covers_the_pre_refactor_registry(self):
        pins = json.loads(_PARITY_PIN.read_text())
        assert set(pins["scenarios"]) <= set(CONTENTION_SCENARIOS)
        assert len(pins["scenarios"]) >= 10

    @pytest.mark.parametrize(
        "name", sorted(json.loads(_PARITY_PIN.read_text())["scenarios"])
    )
    def test_scenario_summary_is_bit_identical(self, name):
        pins = json.loads(_PARITY_PIN.read_text())
        reference = pins["scenarios"][name]
        summary = run_scenario(build_scenario(name, seed=pins["seed"])).summary()
        for key, value in reference.items():
            assert summary[key] == value, f"{name}.{key} drifted"

    def test_explicit_first_fit_equals_scheduler_default(self):
        scenario = build_scenario("interference-heavy", seed=0)
        default = run_scenario(scenario)
        explicit = run_scenario(scenario.with_placement("first-fit"))
        assert default.summary() == explicit.summary()
        for tenant in default.tenants:
            assert (
                default.tenants[tenant].decisions == explicit.tenants[tenant].decisions
            )
            assert default.tenants[tenant].runtimes == explicit.tenants[tenant].runtimes


# --------------------------------------------------------------------- #
class TestPlacementScenarios:
    def test_registry_has_placement_suite(self):
        assert {"spread-vs-pack", "hetero-nodes"} <= set(CONTENTION_SCENARIOS)

    def test_scenarios_with_placement_are_picklable(self):
        for name in ("spread-vs-pack", "hetero-nodes"):
            scenario = build_scenario(name, seed=0).with_placement("least-slowdown")
            clone = pickle.loads(pickle.dumps(scenario))
            assert clone.placement == scenario.placement

    def test_result_reports_the_placement_policy(self):
        base = build_scenario("spread-vs-pack", seed=0)
        assert run_scenario(base).placement == "first-fit"
        assert run_scenario(base.with_placement("pack")).placement == "pack"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_least_slowdown_beats_pack_on_interference_heavy(self, seed):
        """The acceptance criterion: interference-aware placement achieves
        strictly lower mean slowdown than adversarial packing."""
        base = build_scenario("interference-heavy", seed=seed)
        packed = run_scenario(base.with_placement("pack")).summary()
        aware = run_scenario(base.with_placement("least-slowdown")).summary()
        assert aware["mean_slowdown"] < packed["mean_slowdown"]
        assert aware["interference_inclusive_regret"] < packed["interference_inclusive_regret"]

    def test_hetero_nodes_reward_interference_aware_placement(self):
        base = build_scenario("hetero-nodes", seed=0)
        first_fit = run_scenario(base).summary()
        aware = run_scenario(base.with_placement("least-slowdown")).summary()
        # first-fit packs the io-noisy node (first in cluster order); the
        # aware policy reads the class weights and escapes to the quiet tier.
        assert aware["mean_slowdown"] < first_fit["mean_slowdown"]

    def test_with_placement_accepts_instances_and_restores_default(self):
        base = build_scenario("spread-vs-pack", seed=0)
        assert base.with_placement(Pack()).placement == Pack()
        assert base.with_placement("pack").with_placement(None).placement is None

    def test_slowdown_feedback_marks_every_tenant(self):
        scenario = build_scenario("interference-heavy", seed=0).with_slowdown_feedback(0.5)
        for tenant in scenario.tenants:
            assert tenant.reward is not None
            assert tenant.reward.mode == "slowdown_inclusive"
            assert tenant.reward.slowdown_weight == 0.5
        result = run_scenario(scenario)
        assert set(result.reward_modes.values()) == {"slowdown_inclusive"}
