"""Batch/sequential and parallel/serial parity of the evaluation engine.

The engine's contract is that none of its speed machinery changes results:

* ``recommend_batch`` / ``observe_batch`` reproduce the exact decisions and
  final model state of sequential calls under identical seeds;
* ``n_workers > 1`` reproduces the serial per-round RMSE/accuracy series
  bit for bit;
* the array-based tolerant-selection fast path picks the same arm as the
  dict-based audit path;
* the incremental normal-equation solver matches the full per-round lstsq
  refits.
"""

import numpy as np
import pytest

from repro.core.banditware import BanditWare
from repro.core.models import LeastSquaresModel, RidgeModel
from repro.core.policies import DecayingEpsilonGreedyPolicy
from repro.core.selection import ToleranceConfig, TolerantSelector
from repro.evaluation import OnlineSimulation, SimulationConfig
from repro.hardware import ndp_catalog
from repro.workloads import LinearRuntimeWorkload, TraceGenerator


@pytest.fixture
def linear_setup(ndp):
    workload = LinearRuntimeWorkload.random(ndp, n_features=2, seed=3, noise_sigma=0.5)
    frame = TraceGenerator(workload, ndp, seed=17).generate_frame(30, grid=True)
    return workload, frame


def _random_features(rng, n=1):
    batch = [{"x0": float(rng.uniform(0, 100)), "x1": float(rng.uniform(0, 100))} for _ in range(n)]
    return batch if n > 1 else batch[0]


class TestBatchSequentialParity:
    def _bandit(self, ndp, seed=11):
        return BanditWare(catalog=ndp, feature_names=["x0", "x1"], seed=seed)

    def test_recommend_batch_matches_sequential(self, ndp):
        rng = np.random.default_rng(0)
        batch = _random_features(rng, 12)
        a, b = self._bandit(ndp), self._bandit(ndp)
        sequential = [a.recommend(f) for f in batch]
        batched = b.recommend_batch(batch)
        assert [r.hardware.name for r in sequential] == [r.hardware.name for r in batched]
        assert [r.explored for r in sequential] == [r.explored for r in batched]

    def test_observe_batch_matches_sequential(self, ndp, linear_workload):
        rng = np.random.default_rng(1)
        batch = _random_features(rng, 20)
        hardware = [ndp[int(rng.integers(len(ndp)))].name for _ in batch]
        runtimes = [
            linear_workload.observed_runtime(f, ndp[hw], np.random.default_rng(i))
            for i, (f, hw) in enumerate(zip(batch, hardware))
        ]
        a, b = self._bandit(ndp), self._bandit(ndp)
        for f, hw, rt in zip(batch, hardware, runtimes):
            a.observe(f, hw, rt)
        b.observe_batch(batch, hardware, runtimes)
        for model_a, model_b in zip(a.models, b.models):
            assert np.array_equal(model_a.coefficients, model_b.coefficients)
            assert model_a.intercept == model_b.intercept
            assert model_a.n_observations == model_b.n_observations
        assert len(a.history) == len(b.history)
        assert [h.hardware for h in a.history] == [h.hardware for h in b.history]

    def test_observe_batch_validates_before_mutating(self, ndp):
        bandit = self._bandit(ndp)
        with pytest.raises(ValueError):
            bandit.observe_batch(
                [{"x0": 1.0, "x1": 2.0}, {"x0": 3.0, "x1": 4.0}],
                ["H0", "H1"],
                [5.0, -1.0],
            )
        assert all(m.n_observations == 0 for m in bandit.models)

    def test_observe_batch_length_mismatch(self, ndp):
        with pytest.raises(ValueError):
            self._bandit(ndp).observe_batch([{"x0": 1.0, "x1": 2.0}], ["H0", "H1"], [1.0])

    def test_observe_batch_rejects_non_finite_context(self, ndp):
        bandit = self._bandit(ndp)
        with pytest.raises(ValueError, match="non-finite"):
            bandit.observe_batch(
                [{"x0": float("nan"), "x1": 1.0}], ["H0"], [10.0]
            )
        assert all(m.n_observations == 0 for m in bandit.models)

    def test_observe_vector_rejects_out_of_range_arm_index(self, ndp):
        bandit = self._bandit(ndp)
        with pytest.raises(IndexError):
            bandit.observe_vector(np.asarray([1.0, 2.0]), -1, 5.0)
        with pytest.raises(IndexError):
            bandit.observe_vector(np.asarray([1.0, 2.0]), len(ndp), 5.0)

    def test_custom_nonlinear_model_estimates_go_through_predict(self, ndp):
        from repro.core.models.base import ArmModel
        from repro.core.policies.base import BanditPolicy

        class SquaredModel(ArmModel):
            def __init__(self, n_features):
                super().__init__(n_features)
                self._w = np.ones(n_features)

            def update(self, x, runtime):
                self._n_observations += 1

            def predict(self, x):
                context = self._check_context(x)
                return float((self._w @ context) ** 2)

            @property
            def coefficients(self):
                return self._w.copy()

            @property
            def intercept(self):
                return 0.0

        models = [SquaredModel(2) for _ in ndp]
        estimates = BanditPolicy.estimate_runtimes(np.asarray([2.0, 1.0]), models, ndp)
        # Default predict_vector must delegate to predict (9.0), not assume
        # linearity (which would give 3.0).
        assert all(v == pytest.approx(9.0) for v in estimates.values())

    def test_warm_start_matches_sequential_observes(self, ndp, linear_workload):
        frame = TraceGenerator(linear_workload, ndp, seed=5).generate_frame(24)
        batched = self._bandit(ndp)
        batched.warm_start(frame)
        sequential = self._bandit(ndp)
        for row in frame.iterrows():
            features = {"x0": float(row["x0"]), "x1": float(row["x1"])}
            sequential.observe(features, str(row["hardware"]), float(row["runtime_seconds"]))
        for model_a, model_b in zip(batched.models, sequential.models):
            assert np.allclose(model_a.coefficients, model_b.coefficients, rtol=1e-10)
            assert model_a.intercept == pytest.approx(model_b.intercept, rel=1e-10)

    def test_predict_runtimes_batch_matches_scalar(self, ndp, linear_workload):
        bandit = self._bandit(ndp)
        frame = TraceGenerator(linear_workload, ndp, seed=5).generate_frame(12)
        bandit.warm_start(frame)
        rng = np.random.default_rng(2)
        batch = _random_features(rng, 7)
        matrix = bandit.predict_runtimes_batch(batch)
        assert matrix.shape == (7, len(ndp))
        for i, features in enumerate(batch):
            scalar = bandit.predict_runtimes(features)
            for j, hw in enumerate(ndp):
                assert matrix[i, j] == pytest.approx(scalar[hw.name], rel=1e-12)


class TestWorkerParity:
    def _series(self, linear_setup, ndp, n_workers):
        workload, frame = linear_setup
        config = SimulationConfig(n_rounds=12, n_simulations=4, seed=9, n_workers=n_workers)
        return OnlineSimulation(workload, ndp, frame, config=config).run()

    def test_parallel_bit_identical_to_serial(self, linear_setup, ndp):
        serial = self._series(linear_setup, ndp, n_workers=1)
        parallel = self._series(linear_setup, ndp, n_workers=2)
        assert np.array_equal(serial.rmse, parallel.rmse)
        assert np.array_equal(serial.accuracy, parallel.accuracy)

    def test_n_workers_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_workers=0)


class TestSelectorFastPath:
    def test_select_index_matches_dict_select(self, ndp):
        rng = np.random.default_rng(4)
        for tolerance in (
            ToleranceConfig(),
            ToleranceConfig(ratio=0.05),
            ToleranceConfig(seconds=20.0),
            ToleranceConfig(ratio=0.1, seconds=5.0),
        ):
            selector = TolerantSelector(tolerance=tolerance)
            for _ in range(200):
                values = rng.uniform(-50.0, 200.0, size=len(ndp))
                outcome = selector.select(ndp, values)
                arm, fastest, limit, n_candidates = selector.select_index(ndp, values)
                assert ndp[arm].name == outcome.chosen.name
                assert ndp[fastest].name == outcome.fastest.name
                assert limit == pytest.approx(outcome.limit)
                assert n_candidates == len(outcome.candidates)

    def test_policy_fast_path_matches_audit_path(self, ndp):
        models = []
        rng = np.random.default_rng(6)
        for _ in ndp:
            model = LeastSquaresModel(2)
            X = rng.uniform(0, 10, size=(8, 2))
            model.fit(X, rng.uniform(1, 100, size=8))
            models.append(model)
        for seed in range(20):
            audit = DecayingEpsilonGreedyPolicy(
                epsilon0=0.5, tolerance=ToleranceConfig(seconds=10.0), audit_estimates=True
            )
            fast = DecayingEpsilonGreedyPolicy(
                epsilon0=0.5, tolerance=ToleranceConfig(seconds=10.0), audit_estimates=False
            )
            context = np.asarray([5.0, 2.0])
            d1 = audit.select(context, models, ndp, np.random.default_rng(seed))
            d2 = fast.select(context, models, ndp, np.random.default_rng(seed))
            assert d1.arm_index == d2.arm_index
            assert d1.explored == d2.explored


class TestIncrementalSolverParity:
    def test_matches_full_refit_on_stream(self, rng):
        incremental = LeastSquaresModel(3)
        full = LeastSquaresModel(3, solver="full")
        for i in range(30):
            x = rng.uniform(0, 10, size=3)
            y = float(2.0 * x[0] - x[1] + 0.5 * x[2] + 7.0 + rng.normal(0, 0.1))
            incremental.update(x, y)
            full.update(x, y)
            if i < 3:
                # Under-determined rounds share the exact lstsq path.
                assert np.array_equal(incremental.coefficients, full.coefficients)
            else:
                assert np.allclose(incremental.coefficients, full.coefficients, rtol=1e-6)
                assert incremental.intercept == pytest.approx(full.intercept, rel=1e-6)

    def test_repeated_contexts_fall_back_gracefully(self):
        model = LeastSquaresModel(2)
        for _ in range(6):
            model.update([1.0, 2.0], 10.0)  # rank-deficient gram
        assert np.isfinite(model.coefficients).all()
        assert model.predict([1.0, 2.0]) == pytest.approx(10.0, rel=1e-6)

    def test_update_batch_matches_sequential(self, rng):
        X = rng.uniform(0, 10, size=(15, 2))
        y = rng.uniform(1, 50, size=15)
        for cls in (LeastSquaresModel, RidgeModel):
            one = cls(2)
            two = cls(2)
            for row, value in zip(X, y):
                one.update(row, float(value))
            two.update_batch(X, y)
            assert np.array_equal(one.coefficients, two.coefficients)
            assert one.intercept == two.intercept


class TestServiceBatchParity:
    def _service(self, ndp, seed=5):
        from repro.integration import RecommendationService

        service = RecommendationService(catalog=ndp, seed=seed)
        service.register_application("app", owner="t", feature_names=["x0", "x1"])
        return service

    def test_submit_and_complete_workflows_match_sequential(self, ndp, linear_workload):
        rng = np.random.default_rng(8)
        batch = _random_features(rng, 10)
        batched = self._service(ndp)
        sequential = self._service(ndp)

        tickets_b = batched.submit_workflows("app", batch)
        tickets_s = [sequential.submit_workflow("app", f) for f in batch]
        assert [t.recommendation.hardware.name for t in tickets_b] == [
            t.recommendation.hardware.name for t in tickets_s
        ]

        runtimes = [float(10 + 5 * i) for i in range(len(batch))]
        batched.complete_workflows(
            [(t.ticket_id, rt) for t, rt in zip(tickets_b, runtimes)]
        )
        for t, rt in zip(tickets_s, runtimes):
            sequential.complete_workflow(t.ticket_id, rt)

        models_b = batched.recommender_for("app").models
        models_s = sequential.recommender_for("app").models
        for mb, ms in zip(models_b, models_s):
            assert np.array_equal(mb.coefficients, ms.coefficients)
        assert not batched.pending_tickets()
        assert len(batched.history.records_for("app")) == len(batch)

    def test_complete_workflows_rejects_unknown_ticket_atomically(self, ndp):
        service = self._service(ndp)
        tickets = service.submit_workflows("app", [{"x0": 1.0, "x1": 2.0}])
        with pytest.raises(KeyError):
            service.complete_workflows([(tickets[0].ticket_id, 5.0), ("nope", 1.0)])
        assert not tickets[0].completed

    def test_complete_workflows_rejects_duplicate_ticket_in_batch(self, ndp):
        service = self._service(ndp)
        tickets = service.submit_workflows("app", [{"x0": 1.0, "x1": 2.0}])
        with pytest.raises(ValueError, match="twice"):
            service.complete_workflows(
                [(tickets[0].ticket_id, 5.0), (tickets[0].ticket_id, 6.0)]
            )
        assert not tickets[0].completed
        assert not service.history.records_for("app")


@pytest.mark.slow
def test_bench_engine_smoke(tmp_path):
    """The benchmark harness runs end to end and emits a valid report."""
    from benchmarks.bench_engine import run_bench

    out = tmp_path / "BENCH_eval.json"
    report = run_bench(n_rounds=6, n_simulations=2, n_workers=2, repeats=1, output=out)
    assert out.exists()
    assert report["parity"]["serial_vs_parallel_identical"]
    assert report["speedup_serial_vs_seed"] > 0
