"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_feature_matrix,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestScalarChecks:
    def test_positive_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_non_negative_rejects(self, value):
        with pytest.raises(ValueError):
            check_non_negative(value, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_probability_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_in_range_exclusive_rejects_boundary(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_in_range_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(5.0, "x", 0.0, 1.0)

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive(-1, "my_param")


class TestFeatureMatrix:
    def test_1d_promoted_to_row(self):
        out = check_feature_matrix([1.0, 2.0, 3.0])
        assert out.shape == (1, 3)

    def test_2d_passthrough(self):
        out = check_feature_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_n_features_mismatch(self):
        with pytest.raises(ValueError):
            check_feature_matrix([[1, 2]], n_features=3)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            check_feature_matrix([[1.0, float("nan")]])

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            check_feature_matrix(np.zeros((2, 2, 2)))


class TestSameLength:
    def test_equal_lengths(self):
        assert check_same_length(("a", [1, 2]), ("b", [3, 4])) == 2

    def test_mismatch_raises_with_names(self):
        with pytest.raises(ValueError, match="a=2"):
            check_same_length(("a", [1, 2]), ("b", [3]))

    def test_empty_call(self):
        assert check_same_length() == 0
