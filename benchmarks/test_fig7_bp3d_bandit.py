"""Figure 7: RMSE and accuracy of BanditWare on BP3D using all features.

The paper's headline BP3D result: the bandit's RMSE converges toward the
full-1316-sample fit within a few tens of rounds, while its best-hardware
accuracy hovers around the random-guess rate (~1/3) because the three NDP
configurations behave nearly identically.
"""

from benchmarks.conftest import print_report, scaled
from repro.evaluation import build_experiment, format_series, run_experiment


def test_fig7_bp3d_all_features(benchmark, bp3d_bundle):
    definition = build_experiment(
        "bp3d_all_features",
        n_rounds=scaled(50, 15),
        n_simulations=scaled(100, 5),
        seed=0,
    )
    outcome = benchmark.pedantic(run_experiment, args=(definition,), rounds=1, iterations=1)
    result = outcome.result
    final = result.n_rounds

    # Figure 7a: RMSE decreases over rounds toward the full-fit line (orange).
    early_rmse, _ = result.rmse_at(min(3, final))
    late_rmse, _ = result.rmse_at(final)
    assert late_rmse < early_rmse
    assert late_rmse < 2.5 * result.reference_rmse

    # Figure 7b: accuracy stays around the random-guess rate -- the paper
    # attributes this to the near-identical hardware settings, and the full
    # fit itself is no better than random.
    late_accuracy, _ = result.accuracy_at(final)
    assert abs(late_accuracy - result.random_accuracy) < 0.15
    assert abs(result.reference_accuracy - result.random_accuracy) < 0.15

    print_report(
        "Figure 7 — BanditWare on BP3D (all features): RMSE (7a) and accuracy (7b)",
        format_series(result, every=5)
        + f"\n\nrmse gap to full fit at round {final}: {result.rmse_gap_to_reference(final) * 100:.1f}%",
    )
