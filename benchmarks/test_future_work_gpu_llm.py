"""Future-work extension: GPU-aware recommendation for LLM inference.

Section 5 of the paper names two extensions this repository implements and
benchmarks here: additional applications (large language models) and
incorporating GPU information into the hardware recommendation.  The
benchmark streams LLM-inference jobs through BanditWare over a mixed
CPU/GPU catalog and checks that

* the recommender routes heavy jobs to GPU configurations,
* it does not waste 4-GPU nodes on tiny requests once learned, and
* its total runtime is far below both random selection and a CPU-only policy.
"""

import numpy as np

from benchmarks.conftest import print_report, scaled
from repro.core import BanditWare
from repro.evaluation import format_metric_table
from repro.workloads import LLMInferenceWorkload, gpu_catalog


def _run(n_rounds: int, seed: int = 0):
    workload = LLMInferenceWorkload()
    catalog = gpu_catalog()
    rng = np.random.default_rng(seed)
    bandit = BanditWare(catalog=catalog, feature_names=workload.feature_names, seed=seed)
    random_total = 0.0
    bandit_total = 0.0
    cpu_total = 0.0
    cpu_arm = catalog["C8"]
    usage = {name: 0 for name in catalog.names}
    for _ in range(n_rounds):
        features = workload.sample_features(rng)
        rec = bandit.recommend(features)
        runtime = workload.observed_runtime(features, rec.hardware, rng)
        bandit.observe(features, rec.hardware, runtime)
        bandit_total += runtime
        usage[rec.hardware.name] += 1
        random_arm = catalog[int(rng.integers(len(catalog)))]
        random_total += workload.expected_runtime(features, random_arm)
        cpu_total += workload.expected_runtime(features, cpu_arm)
    heavy = {"prompt_tokens": 4096, "output_tokens": 1024, "batch_size": 48}
    tiny = {"prompt_tokens": 64, "output_tokens": 16, "batch_size": 1}
    return {
        "bandit": bandit,
        "usage": usage,
        "bandit_total": bandit_total,
        "random_total": random_total,
        "cpu_total": cpu_total,
        "heavy_choice": bandit.best_hardware(heavy),
        "tiny_choice": bandit.best_hardware(tiny),
        "n_rounds": n_rounds,
    }


def test_future_work_gpu_aware_llm_recommendation(benchmark):
    n_rounds = scaled(250, 60)
    outcome = benchmark.pedantic(_run, args=(n_rounds,), rounds=1, iterations=1)

    # Heavy inference jobs go to GPU nodes; tiny ones avoid the 4-GPU node.
    assert outcome["heavy_choice"].gpus >= 1
    assert outcome["tiny_choice"].name != "G4"
    # Online learning beats both random placement and a CPU-only policy.
    assert outcome["bandit_total"] < outcome["random_total"]
    assert outcome["bandit_total"] < 0.5 * outcome["cpu_total"]

    rows = [
        {"hardware": name, "times_chosen": count}
        for name, count in outcome["usage"].items()
    ]
    body = format_metric_table(rows)
    body += (
        f"\n\ntotal runtime over {outcome['n_rounds']} jobs:"
        f"\n  banditware : {outcome['bandit_total']:,.0f}s"
        f"\n  random     : {outcome['random_total']:,.0f}s"
        f"\n  cpu-only   : {outcome['cpu_total']:,.0f}s"
        f"\nheavy-job recommendation: {outcome['heavy_choice'].name}"
        f"\ntiny-job recommendation:  {outcome['tiny_choice'].name}"
    )
    print_report("Future work — GPU-aware recommendation for LLM inference", body)
