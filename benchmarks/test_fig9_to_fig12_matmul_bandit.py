"""Figures 9-12: BanditWare on matrix multiplication, with and without tolerance.

Four configurations from Section 4.3, all using only the ``size`` feature:

* Figure 9  -- full dataset, no tolerance: accuracy is modest (the paper reports
  ~0.3 vs a random-guess rate of 0.2) because for sub-minute runs the five
  hardware options perform almost identically.
* Figure 10 -- ``size >= 5000`` subset, no tolerance: accuracy rises sharply
  (paper: ~0.8) because large matrices genuinely favour the big configurations.
* Figure 11 -- full dataset, ``tolerance_seconds = 20``: counting any hardware
  within 20 s of the optimum as acceptable recovers high accuracy while
  selecting less resource-intensive hardware.
* Figure 12 -- subset, ``tolerance_ratio = 5%``: high accuracy with more
  efficient hardware on the long-running workloads.
"""

import pytest

from benchmarks.conftest import print_report, scaled
from repro.evaluation import build_experiment, format_series, run_experiment


def _run(name, seed=0):
    definition = build_experiment(
        name,
        n_rounds=scaled(100, 20),
        n_simulations=scaled(10, 3),
        seed=seed,
    )
    return run_experiment(definition)


@pytest.fixture(scope="module")
def fig9_result():
    return _run("matmul_full_no_tolerance")


@pytest.fixture(scope="module")
def fig10_result():
    return _run("matmul_subset_no_tolerance")


def test_fig9_full_dataset_no_tolerance(benchmark, fig9_result):
    outcome = benchmark.pedantic(_run, args=("matmul_full_no_tolerance", 1), rounds=1, iterations=1)
    result = outcome.result
    final = result.n_rounds
    accuracy, _ = result.accuracy_at(final)

    # Better than random guessing among five arms, but far from perfect:
    # short runs make the best-hardware label nearly unpredictable.
    assert accuracy > result.random_accuracy
    assert accuracy < 0.85
    # RMSE converges toward the full fit.
    assert result.rmse_at(final)[0] < result.rmse_at(min(3, final))[0]

    print_report(
        "Figure 9 — matmul full dataset, no tolerance (accuracy 9a, RMSE 9b)",
        format_series(result, every=10),
    )


def test_fig10_subset_no_tolerance(benchmark, fig10_result, fig9_result):
    outcome = benchmark.pedantic(_run, args=("matmul_subset_no_tolerance", 1), rounds=1, iterations=1)
    result = outcome.result
    final = result.n_rounds
    accuracy, _ = result.accuracy_at(final)

    # The paper's key contrast: accuracy on the size >= 5000 subset is far
    # higher than on the full dataset (≈0.8 vs ≈0.3 in the paper).
    full_accuracy, _ = fig9_result.result.accuracy_at(fig9_result.result.n_rounds)
    assert accuracy > full_accuracy + 0.2
    assert accuracy > 0.6

    print_report(
        "Figure 10 — matmul subset (size >= 5000), no tolerance",
        format_series(result, every=10)
        + f"\n\naccuracy subset={accuracy:.2f} vs full dataset={full_accuracy:.2f}",
    )


def test_fig11_full_dataset_tolerance_20s(benchmark, fig9_result):
    outcome = benchmark.pedantic(_run, args=("matmul_full_tolerance_20s", 1), rounds=1, iterations=1)
    result = outcome.result
    final = result.n_rounds
    accuracy, _ = result.accuracy_at(final)

    # Allowing 20 extra seconds turns the short-run ambiguity into a non-issue:
    # accuracy improves substantially over the strict Figure 9 setting.
    strict_accuracy, _ = fig9_result.result.accuracy_at(fig9_result.result.n_rounds)
    assert accuracy > strict_accuracy + 0.2
    assert accuracy > 0.7

    print_report(
        "Figure 11 — matmul full dataset, tolerance_seconds = 20",
        format_series(result, every=10)
        + f"\n\naccuracy with tolerance={accuracy:.2f} vs strict={strict_accuracy:.2f}",
    )


def test_fig12_subset_tolerance_5pct(benchmark, fig10_result):
    outcome = benchmark.pedantic(_run, args=("matmul_subset_tolerance_5pct", 1), rounds=1, iterations=1)
    result = outcome.result
    final = result.n_rounds
    accuracy, _ = result.accuracy_at(final)

    # A 5% slowdown tolerance keeps accuracy high on the long-running subset
    # while permitting more resource-efficient choices.
    assert accuracy > 0.6
    strict_subset_accuracy, _ = fig10_result.result.accuracy_at(fig10_result.result.n_rounds)
    assert accuracy > strict_subset_accuracy - 0.25

    print_report(
        "Figure 12 — matmul subset (size >= 5000), tolerance_ratio = 5%",
        format_series(result, every=10)
        + f"\n\naccuracy with 5% tolerance={accuracy:.2f} vs strict subset={strict_subset_accuracy:.2f}",
    )
