"""Section 5 headline claim: near-baseline RMSE within ~25 rounds.

The paper's conclusion states that "in just 25 rounds, our approach learns a
model that performs only 17.90% worse than the theoretically best possible"
(the full 1316-sample fit).  The body of Section 4.2 reports the underlying
numbers: full-fit RMSE 12 257 s; bandit 20 183 ± 12 291 s at round 25 and
16 494 ± 7 079 s at round 50 (note those raw numbers correspond to larger
relative gaps than the quoted 17.9 % -- we track the raw ratios).

This benchmark measures the same quantities on the synthetic BP3D dataset and
asserts the claim's *shape*: the gap to the full fit shrinks monotonically in
expectation between round 5, round 25 and round 50, and by round 50 the bandit
is within a factor of ~1.8 of the full fit trained on 1316 samples -- using
roughly 4 % as much data.
"""

from benchmarks.conftest import print_report, scaled
from repro.evaluation import build_experiment, format_metric_table, run_experiment


def test_claim_rmse_gap_shrinks_within_tens_of_rounds(benchmark, bp3d_bundle):
    definition = build_experiment(
        "bp3d_all_features",
        n_rounds=scaled(50, 15),
        n_simulations=scaled(100, 5),
        seed=3,
    )
    outcome = benchmark.pedantic(run_experiment, args=(definition,), rounds=1, iterations=1)
    result = outcome.result
    final = result.n_rounds

    checkpoints = [r for r in (5, 25, 50) if r <= final]
    gaps = {r: result.rmse_gap_to_reference(r) for r in checkpoints}

    # The gap at the final checkpoint is smaller than at the mid checkpoint
    # (there is a transient bump where each arm has about as many samples as
    # features -- classic least-squares behaviour -- which the report prints),
    # and by the final checkpoint the bandit is within ~1.8x of a model
    # trained on the full dataset (the paper's measured round-50 ratio is
    # 16494/12257 ≈ 1.35; we allow head-room for the synthetic substrate).
    if len(checkpoints) >= 2:
        assert gaps[checkpoints[-1]] < gaps[checkpoints[-2]]
    assert gaps[checkpoints[-1]] < 0.8

    rows = [
        {
            "round": r,
            "bandit_rmse": result.rmse_at(r)[0],
            "bandit_rmse_std": result.rmse_at(r)[1],
            "full_fit_rmse": result.reference_rmse,
            "gap": gaps[r],
        }
        for r in checkpoints
    ]
    body = format_metric_table(rows)
    body += (
        f"\n\npaper (Section 4.2): full fit 12257s; bandit 20183±12291s @ round 25, "
        f"16494±7079s @ round 50"
    )
    print_report("Section 5 claim — RMSE gap to the full fit after tens of rounds (BP3D)", body)
