"""Capture the recommendation-service facade parity reference.

The sharded serving refactor must leave the ``RecommendationService`` facade
bit-identical to the single-process implementation it replaces.  This script
drives a deterministic multi-application request stream through the *public*
facade API only -- registrations with every reward mode, warm starting, single
and batched submissions, single and batched completions with queue delays and
slowdowns, and tickets intentionally left pending -- and records everything
observable: every ticket's id / hardware / explored flag, each recommender's
final coefficients, observation counts and ε, the run-history ledger, and the
pending set.

Run once at the pre-refactor commit to produce
``benchmarks/service_parity_reference.json``::

    PYTHONPATH=src python benchmarks/capture_service_parity.py

Tests (``tests/test_integration_sharding.py``), CI and the service benchmark
suite then replay the same stream through the sharded facade (N = 1..4
shards) and require the summary to match the reference **exactly**.

Because only public API is used, the driver itself is shared by the capture,
the tests and ``bench_engine.py --suite service``.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.rewards import RewardConfig
from repro.hardware import ndp_catalog
from repro.integration import RecommendationService, RunHistoryStore
from repro.workloads import LinearRuntimeWorkload, TraceGenerator

REFERENCE_PATH = Path(__file__).resolve().parent / "service_parity_reference.json"

#: Applications in the reference stream: (name, owner, n_features, seed).
_APPS = (
    ("alpha", "ada", 2, 11),
    ("beta", "bob", 1, 12),
    ("gamma", "grace", 3, 13),
)


def build_reference_service(
    seed: int = 0, n_shards: Optional[int] = None
) -> Tuple[RecommendationService, Dict[str, LinearRuntimeWorkload]]:
    """The reference service: three applications, one warm-started.

    ``n_shards`` is only forwarded when given, so the same builder runs
    against the pre-refactor (shard-less) facade and the sharded one.
    """
    catalog = ndp_catalog()
    workloads = {
        name: LinearRuntimeWorkload.random(
            catalog, n_features=n_features, seed=wl_seed, name=name
        )
        for name, _, n_features, wl_seed in _APPS
    }
    history = RunHistoryStore()
    history.extend(TraceGenerator(workloads["beta"], catalog, seed=1).generate_runs(15))
    kwargs = {} if n_shards is None else {"n_shards": n_shards}
    service = RecommendationService(catalog=catalog, history=history, seed=seed, **kwargs)
    service.register_application(
        "alpha", "ada", workloads["alpha"].feature_names, priority=1
    )
    service.register_application(
        "beta",
        "bob",
        workloads["beta"].feature_names,
        reward=RewardConfig(mode="queue_inclusive", queue_weight=0.5),
    )
    service.register_application(
        "gamma",
        "grace",
        workloads["gamma"].feature_names,
        reward=RewardConfig(mode="slowdown_inclusive", slowdown_weight=1.0),
        priority=2,
    )
    return service, workloads


def drive_reference_stream(
    service: RecommendationService,
    workloads: Dict[str, LinearRuntimeWorkload],
    n_rounds: int = 60,
) -> Dict:
    """Drive the deterministic reference stream; return the observable summary.

    Per-application RNG streams make the stream independent of how requests
    interleave internally: feature draws and runtime noise depend only on the
    per-application call order, which the facade contract preserves.
    """
    apps = [name for name, *_ in _APPS]
    feature_rng = {name: np.random.default_rng(100 + i) for i, name in enumerate(apps)}
    runtime_rng = {name: np.random.default_rng(200 + i) for i, name in enumerate(apps)}
    tickets_log = []
    for round_index in range(n_rounds):
        app = apps[round_index % len(apps)]
        workload = workloads[app]
        if round_index % 10 == 9:
            features = [workload.sample_features(feature_rng[app]) for _ in range(3)]
            tickets = service.submit_workflows(app, features)
        else:
            tickets = [
                service.submit_workflow(app, workload.sample_features(feature_rng[app]))
            ]
        completions = []
        for ticket in tickets:
            runtime = workload.observed_runtime(
                ticket.features, ticket.recommendation.hardware, runtime_rng[app]
            )
            tickets_log.append(
                {
                    "ticket_id": ticket.ticket_id,
                    "application": app,
                    "hardware": ticket.recommendation.hardware.name,
                    "explored": bool(ticket.recommendation.explored),
                }
            )
            completions.append(
                (
                    ticket.ticket_id,
                    runtime,
                    0.1 * (round_index % 4),
                    1.0 + 0.05 * (round_index % 5),
                )
            )
        if round_index % 13 == 7:
            continue  # leave these tickets pending
        if round_index % 2:
            service.complete_workflows(completions)
        else:
            for ticket_id, runtime, queue, slowdown in completions:
                service.complete_workflow(
                    ticket_id, runtime, queue_seconds=queue, slowdown=slowdown
                )
    return summarise_service(service, tickets_log)


def summarise_service(service: RecommendationService, tickets_log) -> Dict:
    """Everything observable through the facade, JSON-ready."""
    apps = [name for name, *_ in _APPS]
    per_app = {}
    for app in apps:
        recommender = service.recommender_for(app)
        per_app[app] = {
            "coefficients": recommender.coefficients(),
            "observation_counts": recommender.observation_counts(),
            "epsilon": float(recommender.policy.epsilon),
            "history_rows": len(recommender.history),
            "priority": service.priority_for(app),
            "hardware_usage": service.history.hardware_usage(app),
        }
    return {
        "tickets": tickets_log,
        "applications": per_app,
        "history_len": len(service.history),
        "total_runtime": service.history.total_runtime(),
        "pending_tickets": [t.ticket_id for t in service.pending_tickets()],
    }


def run_reference_stream(n_shards: Optional[int] = None, n_rounds: int = 60) -> Dict:
    """Build the reference service and drive the stream in one call."""
    service, workloads = build_reference_service(n_shards=n_shards)
    return drive_reference_stream(service, workloads, n_rounds=n_rounds)


def _current_commit() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "HEAD"], cwd=Path(__file__).resolve().parent.parent
            )
            .decode()
            .strip()
        )
    except Exception:  # pragma: no cover - git may be unavailable
        return "unknown"


def main() -> int:
    reference = {
        "_comment": (
            "Facade parity reference for the sharded serving refactor: the "
            "observable summary of benchmarks/capture_service_parity.py's "
            "deterministic stream at the pre-refactor commit.  The sharded "
            "RecommendationService must reproduce it bit for bit for every "
            "shard count."
        ),
        "captured_at_commit": _current_commit(),
        "n_rounds": 60,
        "summary": run_reference_stream(),
    }
    REFERENCE_PATH.write_text(json.dumps(reference, indent=2) + "\n")
    print(f"wrote {REFERENCE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
