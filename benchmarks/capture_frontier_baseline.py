"""Capture the pre-frontier kernel timings (run at the PRE-frontier commit).

``kernel_baseline.json`` holds the *pre-array-kernel* (per-object engine)
stress timings; this file captures the *array-kernel-with-per-pod-events*
timings -- the PR the event-frontier refactor must beat by >= 2x on the
stress workloads.  Also records the event-machinery profile of the
pre-frontier engine (events processed / pod reschedules) so the
event-count regression gate has a documented "before".

Run from the repository root::

    PYTHONPATH=src python benchmarks/capture_frontier_baseline.py
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "frontier_baseline.json"


def _git_head() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                cwd=Path(__file__).resolve().parent.parent,
            ).stdout.strip()
            or "unknown"
        )
    except OSError:  # pragma: no cover - git-less environments
        return "unknown"


def _time_best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    from bench_engine import _kernel_stress
    from repro.evaluation.contention import build_scenario
    from repro.evaluation.engine import run_scenario_replications

    baseline = {"captured_at_commit": f"{_git_head()} (pre-frontier array kernel)"}

    sweep_scenario = build_scenario("interference-heavy", seed=0)
    baseline["replication_sweep"] = {
        "scenario": "interference-heavy",
        "n_replications": 8,
        "seconds": _time_best(
            lambda: run_scenario_replications(sweep_scenario, 8, n_workers=1)
        ),
    }

    for key, n_pods, cpus, mem in (
        ("kernel_stress", 256, 512, 2048),
        ("kernel_stress_512", 512, 1024, 4096),
    ):
        seconds = _time_best(lambda: _kernel_stress(n_pods, cpus, mem))
        profile = _kernel_stress(n_pods, cpus, mem, profile=True)
        baseline[key] = {
            "n_pods": n_pods,
            "node": {"cpus": cpus, "memory_gb": mem},
            "seconds": seconds,
            "events_processed": int(profile.events_processed),
            "pods_rescheduled": int(profile.pods_rescheduled),
            "reschedule_calls": int(profile.reschedule_calls),
        }

    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(json.dumps(baseline, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
