"""Ablations: selection policy, per-arm model and tolerance sweep.

The paper names richer contextual-bandit algorithms as future work and builds
its results on a single policy (decaying ε-greedy) and a single estimator
(batch least squares).  These ablation benchmarks quantify how those choices
matter on the same synthetic workloads:

* policy ablation -- ε-greedy vs greedy vs random vs LinUCB vs Thompson
  sampling on the Cycles experiment;
* arm-model ablation -- OLS vs ridge vs recursive least squares on the BP3D
  experiment (where early-round conditioning hurts OLS the most);
* tolerance sweep -- how ``tolerance_seconds`` moves accuracy and the average
  resource footprint on the matmul experiment (the design trade-off behind
  Figures 9-12).
"""

import numpy as np

from benchmarks.conftest import print_report, scaled
from repro.data.splits import truncate_by_threshold
from repro.evaluation import OnlineSimulation, SimulationConfig, format_metric_table
from repro.hardware import ResourceCostModel


def _simulate(bundle, feature_names, frame=None, **config_kwargs):
    config = SimulationConfig(**config_kwargs)
    simulation = OnlineSimulation(
        workload=bundle.workload,
        catalog=bundle.catalog,
        evaluation_frame=frame if frame is not None else bundle.frame,
        config=config,
        feature_names=feature_names,
    )
    return simulation.run()


def test_ablation_policy_choice(benchmark, cycles_bundle):
    """All informed policies beat random data collection on Cycles."""
    policies = ("epsilon_greedy", "greedy", "random", "linucb", "thompson")
    n_rounds = scaled(60, 15)
    n_simulations = scaled(10, 3)

    def run_all():
        rows = []
        for policy in policies:
            arm_model = "rls" if policy in ("linucb", "thompson") else "ols"
            result = _simulate(
                cycles_bundle,
                ["num_tasks"],
                n_rounds=n_rounds,
                n_simulations=n_simulations,
                policy=policy,
                arm_model=arm_model,
                tolerance_seconds=20.0,
                seed=0,
            )
            rows.append(
                {
                    "policy": policy,
                    "final_rmse": result.rmse_at(n_rounds)[0],
                    "final_accuracy": result.accuracy_at(n_rounds)[0],
                    "reference_rmse": result.reference_rmse,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_policy = {row["policy"]: row for row in rows}

    # Policies with sustained exploration (ε-greedy, random) collect data on
    # every arm and therefore model the whole catalog well.  Greedy, LinUCB
    # and Thompson sampling commit to the winning arm much earlier, which
    # starves the models of the arms they abandon -- exactly the trade-off
    # this ablation is meant to surface (visible in the printed table), so
    # only the exploring policies are held to the RMSE bound.
    for row in rows:
        if row["policy"] in ("epsilon_greedy", "random"):
            assert row["final_rmse"] < 6.0 * row["reference_rmse"]
    # The paper's ε-greedy policy is competitive with the alternatives.
    best_rmse = min(row["final_rmse"] for row in rows)
    assert by_policy["epsilon_greedy"]["final_rmse"] < 2.5 * best_rmse
    assert by_policy["epsilon_greedy"]["final_accuracy"] >= 0.5

    print_report("Ablation — selection policy (Cycles, tolerance 20 s)", format_metric_table(rows))


def test_ablation_arm_model_choice(benchmark, bp3d_bundle):
    """Regularised estimators tame the noisy early rounds on BP3D."""
    arm_models = ("ols", "ridge", "rls")
    n_rounds = scaled(40, 12)
    n_simulations = scaled(20, 3)

    def run_all():
        rows = []
        for arm_model in arm_models:
            result = _simulate(
                bp3d_bundle,
                bp3d_bundle.feature_names,
                n_rounds=n_rounds,
                n_simulations=n_simulations,
                arm_model=arm_model,
                seed=1,
            )
            rows.append(
                {
                    "arm_model": arm_model,
                    "rmse_round_10": result.rmse_at(min(10, n_rounds))[0],
                    "final_rmse": result.rmse_at(n_rounds)[0],
                    "reference_rmse": result.reference_rmse,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_model = {row["arm_model"]: row for row in rows}

    # Every estimator converges toward the reference...
    for row in rows:
        assert row["final_rmse"] < 4.0 * row["reference_rmse"]
    # ...and a regularised estimator is no worse than plain OLS early on
    # (under-determined refits are exactly where OLS is fragile).
    regularised_best = min(by_model["ridge"]["rmse_round_10"], by_model["rls"]["rmse_round_10"])
    assert regularised_best <= by_model["ols"]["rmse_round_10"] * 1.05

    print_report("Ablation — per-arm estimator (BP3D, all features)", format_metric_table(rows))


def test_ablation_tolerance_sweep(benchmark, matmul_bundle):
    """tolerance_seconds trades a bounded slowdown for lighter hardware."""
    tolerances = (0.0, 5.0, 20.0, 60.0)
    n_rounds = scaled(80, 20)
    n_simulations = scaled(10, 3)
    cost_model = ResourceCostModel()
    frame = matmul_bundle.frame

    def run_all():
        rows = []
        for tolerance in tolerances:
            result = _simulate(
                matmul_bundle,
                ["size"],
                frame=frame,
                n_rounds=n_rounds,
                n_simulations=n_simulations,
                tolerance_seconds=tolerance,
                seed=2,
            )
            rows.append(
                {
                    "tolerance_s": tolerance,
                    "final_accuracy": result.accuracy_at(n_rounds)[0],
                    "final_rmse": result.rmse_at(n_rounds)[0],
                    "random_accuracy": result.random_accuracy,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Accuracy (measured against the tolerance-consistent acceptable set) is
    # non-decreasing in the tolerance, and a 20 s allowance already lifts the
    # strict setting by a wide margin -- the Figure 9 → Figure 11 effect.
    accuracies = [row["final_accuracy"] for row in rows]
    assert accuracies[-1] >= accuracies[0]
    assert accuracies[2] > accuracies[0] + 0.15

    print_report("Ablation — tolerance_seconds sweep (matmul, full dataset)", format_metric_table(rows))
