"""Capture the event-frontier parity reference (run at the PRE-frontier commit).

The event-frontier refactor replaces per-pod tentative ``pod_finished``
events with one ``node_next_finish`` event per node.  That is a pure
event-machinery change: every registered scenario must reproduce its
pre-refactor completion stream *bit for bit* under both the default
FirstFit placement and the interference-aware LeastSlowdown placement
(the policy that exercises rate changes hardest).

Per scenario x placement the file stores the fingerprint of
:func:`repro.evaluation.contention.scenario_fingerprint`: the full summary
dict (every float verbatim), each tenant's order-sensitive hardware
decision stream, the accounting row count and a SHA-256 digest of the
rows' canonical JSON (every per-completion float, pinned without storing
megabytes of rows).

Like the other ``*_parity_reference.json`` captures: generate this file
with the engine *before* the refactor and never regenerate it after --
the whole point is that the post-refactor engine must match it.

Run from the repository root::

    PYTHONPATH=src python benchmarks/capture_frontier_parity.py
"""

from __future__ import annotations

import json
from pathlib import Path

REFERENCE_PATH = Path(__file__).resolve().parent / "frontier_parity_reference.json"

PLACEMENTS = ("first-fit", "least-slowdown")


def main() -> int:
    from repro.evaluation.contention import CONTENTION_SCENARIOS, scenario_fingerprint

    reference = {
        "seed": 0,
        "placements": list(PLACEMENTS),
        "scenarios": {
            name: {
                placement: scenario_fingerprint(name, placement)
                for placement in PLACEMENTS
            }
            for name in sorted(CONTENTION_SCENARIOS)
        },
    }
    REFERENCE_PATH.write_text(json.dumps(reference, indent=2) + "\n")
    print(
        f"captured {len(reference['scenarios'])} scenarios x "
        f"{len(PLACEMENTS)} placements -> {REFERENCE_PATH}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
