"""Figure 6: contextual bandit vs. baseline on the `area` feature, per hardware.

Figure 6 plots, for each NDP hardware setting, the BP3D runtime against the
burn-unit area, overlaying the full-data fit ("Actual") with the fit learned
by the bandit after 100 simulations of 50 rounds ("Predicted").  This
benchmark runs the same configuration and compares the two fits at
representative areas on every hardware.
"""

import numpy as np

from benchmarks.conftest import print_report, scaled
from repro.core import BanditWare
from repro.core.models import LeastSquaresModel
from repro.evaluation import SimulationConfig, format_metric_table
from repro.utils.rng import SeedSequencePool


def _run(bundle, n_simulations, n_rounds):
    catalog = bundle.catalog
    workload = bundle.workload
    frame = bundle.frame

    # Baseline ("Actual"): per-hardware least squares on the full dataset,
    # area feature only.
    area = frame["area"].to_numpy(float).reshape(-1, 1)
    runtimes = frame["runtime_seconds"].to_numpy(float)
    hardware = frame["hardware"].values
    baseline = {}
    for hw in catalog:
        mask = np.asarray([str(h) == hw.name for h in hardware])
        baseline[hw.name] = LeastSquaresModel(1).fit(area[mask], runtimes[mask])

    # Bandit ("Predicted"): average the learned per-arm coefficients over
    # n_simulations independent online runs of n_rounds rounds each.
    pool = SeedSequencePool(0)
    coefficient_sums = {hw.name: np.zeros(2) for hw in catalog}
    for sim in range(n_simulations):
        rng = pool.generator(sim)
        bandit = BanditWare(catalog=catalog, feature_names=["area"], seed=rng)
        for _ in range(n_rounds):
            features = workload.sample_features(rng)
            rec = bandit.recommend({"area": features["area"]})
            runtime = workload.observed_runtime(features, rec.hardware, rng)
            bandit.observe({"area": features["area"]}, rec.hardware, runtime)
        for hw, model in zip(catalog, bandit.models):
            coefficient_sums[hw.name] += np.array([model.coefficients[0], model.intercept])
    learned = {name: total / n_simulations for name, total in coefficient_sums.items()}
    return baseline, learned


def test_fig6_bandit_vs_baseline_area_fit(benchmark, bp3d_bundle):
    n_simulations = scaled(100, 5)
    n_rounds = scaled(50, 15)
    baseline, learned = benchmark.pedantic(
        _run, args=(bp3d_bundle, n_simulations, n_rounds), rounds=1, iterations=1
    )

    probe_areas = np.array([1.0e6, 1.5e6, 2.0e6, 2.5e6])
    rows = []
    for hw in bp3d_bundle.catalog:
        w, b = learned[hw.name]
        for area in probe_areas:
            actual = baseline[hw.name].predict([area])
            predicted = w * area + b
            rows.append(
                {
                    "hardware": hw.name,
                    "area_m2": float(area),
                    "actual_fit_s": actual,
                    "bandit_fit_s": predicted,
                    "rel_err": abs(predicted - actual) / max(abs(actual), 1.0),
                }
            )

    # The paper observes that the bandit's fit "closely matches the actual
    # values (baseline), although the noise is slightly off": require the
    # average relative deviation across hardware/areas to stay moderate.
    mean_rel_err = float(np.mean([r["rel_err"] for r in rows]))
    assert mean_rel_err < 0.35
    # Runtimes are in the tens-of-thousands-of-seconds range of Figure 6.
    assert max(r["actual_fit_s"] for r in rows) > 3.0e4

    body = format_metric_table(rows, columns=["hardware", "area_m2", "actual_fit_s", "bandit_fit_s", "rel_err"])
    body += f"\n\nmean relative deviation bandit vs baseline: {mean_rel_err * 100:.1f}%"
    body += f"\n(n_sim={n_simulations}, n_rounds={n_rounds}, feature=area)"
    print_report("Figure 6 — contextual bandit vs baseline fit on the area feature", body)
