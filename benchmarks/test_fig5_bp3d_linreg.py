"""Figure 5: RMSE and R² of 100 linear-regression recommenders on 25 BP3D samples.

The paper trains 100 offline linear-regression models, each on a random
25-sample subset of the 1316-run BP3D dataset, and reports the spread of their
RMSE and R² on the full data -- the point being that with so little data an
offline recommender is unreliable (average R² of only ~13 %).  The experiment
is run twice: with all features ("rmse_all"/"r2_all") and with the area
feature only ("rmse_area_only"/"r2_area_only").
"""

from benchmarks.conftest import print_report, scaled
from repro.baselines import FullFitOracle, train_regression_ensemble
from repro.evaluation.reporting import format_histogram, format_metric_table


def _run(bundle, n_models):
    all_features = train_regression_ensemble(
        bundle.frame,
        bundle.catalog,
        bundle.feature_names,
        n_models=n_models,
        n_samples=25,
        seed=0,
    )
    area_only = train_regression_ensemble(
        bundle.frame,
        bundle.catalog,
        ["area"],
        n_models=n_models,
        n_samples=25,
        seed=1,
    )
    full_fit = FullFitOracle(bundle.frame, bundle.catalog, bundle.feature_names)
    return all_features, area_only, full_fit


def test_fig5_bp3d_linear_regression_spread(benchmark, bp3d_bundle):
    n_models = scaled(100, 10)
    all_features, area_only, full_fit = benchmark.pedantic(
        _run, args=(bp3d_bundle, n_models), rounds=1, iterations=1
    )
    summary_all = all_features.summary()
    summary_area = area_only.summary()

    # 25-sample models are unreliable: mean R² is far below the full fit's,
    # and the spread between the best and worst model is wide.
    assert summary_all["r2_mean"] < 0.6
    assert summary_all["r2_mean"] < full_fit.reference_r2
    assert summary_all["rmse_mean"] > full_fit.reference_rmse
    assert summary_all["rmse_range"] > 0.1 * full_fit.reference_rmse

    # Using only `area` loses little: runtime is dominated by that feature,
    # so the area-only models are in the same league as the all-feature ones
    # (the paper plots the two side by side for this reason).
    assert summary_area["rmse_mean"] < 2.0 * summary_all["rmse_mean"]

    rows = [
        {"ensemble": "rmse_all", **{k: v for k, v in summary_all.items() if k.startswith("rmse")}},
        {"ensemble": "rmse_area_only", **{k: v for k, v in summary_area.items() if k.startswith("rmse")}},
    ]
    r2_rows = [
        {"ensemble": "r2_all", **{k: v for k, v in summary_all.items() if k.startswith("r2")}},
        {"ensemble": "r2_area_only", **{k: v for k, v in summary_area.items() if k.startswith("r2")}},
    ]
    body = format_metric_table(rows) + "\n\n" + format_metric_table(r2_rows)
    body += "\n\n" + format_histogram(all_features.rmse_scores, bins=8, title="RMSE distribution (all features)")
    body += (
        f"\n\nfull-fit reference: rmse={full_fit.reference_rmse:.1f}s, r2={full_fit.reference_r2:.3f}"
        f"\nmodels per ensemble: {n_models}, training subset size: 25"
    )
    print_report("Figure 5 — linear regressions on 25 BP3D samples (RMSE and R² spread)", body)
