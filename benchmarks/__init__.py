"""Benchmark suite: one module per table/figure of the paper (see DESIGN.md)."""
