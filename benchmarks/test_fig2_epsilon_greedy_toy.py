"""Figure 2: the ε-greedy multi-armed bandit illustration.

The paper's Figure 2 illustrates a plain (non-contextual) ε-greedy bandit on a
handful of slot-machine arms.  This benchmark runs that toy problem with the
library's machinery (a constant context reduces the contextual bandit to the
classic one) and checks the textbook behaviour: the bandit concentrates its
pulls on the best arm and earns more than uniform play.
"""

import numpy as np

from benchmarks.conftest import print_report, scaled
from repro.core import BanditWare, DecayingEpsilonGreedyPolicy
from repro.evaluation import format_metric_table
from repro.hardware import HardwareCatalog, HardwareConfig


def _run_toy(n_rounds: int, seed: int = 0):
    # Three "slot machines": identical resources, different mean payout time.
    catalog = HardwareCatalog(
        [
            HardwareConfig("arm0", cpus=1, memory_gb=1),
            HardwareConfig("arm1", cpus=1, memory_gb=1),
            HardwareConfig("arm2", cpus=1, memory_gb=1),
        ]
    )
    mean_runtime = {"arm0": 60.0, "arm1": 30.0, "arm2": 45.0}  # arm1 is best
    rng = np.random.default_rng(seed)
    bandit = BanditWare(
        catalog=catalog,
        feature_names=["bias"],
        policy=DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=0.97),
        seed=seed,
    )
    pulls = {name: 0 for name in catalog.names}
    total_runtime = 0.0
    random_runtime = 0.0
    for _ in range(n_rounds):
        features = {"bias": 1.0}
        rec = bandit.recommend(features)
        runtime = max(rng.normal(mean_runtime[rec.hardware.name], 5.0), 1.0)
        bandit.observe(features, rec.hardware, runtime)
        pulls[rec.hardware.name] += 1
        total_runtime += runtime
        random_arm = catalog[int(rng.integers(len(catalog)))]
        random_runtime += max(rng.normal(mean_runtime[random_arm.name], 5.0), 1.0)
    return pulls, total_runtime, random_runtime, n_rounds


def test_fig2_epsilon_greedy_toy(benchmark):
    n_rounds = scaled(300, 60)
    pulls, total_runtime, random_runtime, _ = benchmark.pedantic(
        _run_toy, args=(n_rounds,), rounds=1, iterations=1
    )

    # The best arm (arm1) dominates the pulls and the bandit beats uniform play.
    assert pulls["arm1"] > pulls["arm0"]
    assert pulls["arm1"] > pulls["arm2"]
    assert pulls["arm1"] > 0.5 * n_rounds
    assert total_runtime < random_runtime

    rows = [
        {"arm": name, "mean_runtime_s": mean, "pulls": pulls[name]}
        for name, mean in (("arm0", 60.0), ("arm1", 30.0), ("arm2", 45.0))
    ]
    body = format_metric_table(rows)
    body += (
        f"\n\ntotal runtime paid by epsilon-greedy: {total_runtime:,.0f}s"
        f"\ntotal runtime paid by uniform play:   {random_runtime:,.0f}s"
    )
    print_report("Figure 2 — epsilon-greedy multi-armed bandit (toy illustration)", body)
