"""Figure 3: Cycles makespan vs number of tasks, per synthetic hardware.

Figure 3 plots, for each of the four synthetic hardware settings, the actual
makespans of the 80 Cycles runs (diamond markers) and the model's linear fit
(circle markers).  This benchmark regenerates both: per-hardware least-squares
fits on the generated dataset, compared against the workload's ground-truth
lines, evaluated at the paper's two workflow sizes (100 and 500 tasks).
"""

import numpy as np

from benchmarks.conftest import print_report
from repro.baselines import FullFitOracle
from repro.evaluation import format_metric_table, rmse


def _fit(bundle):
    oracle = FullFitOracle(bundle.frame, bundle.catalog, ["num_tasks"])
    rows = []
    for hw in bundle.catalog:
        model = oracle.model_for(hw)
        truth = bundle.workload.true_coefficients(hw)
        rows.append(
            {
                "hardware": hw.name,
                "fitted_w": float(model.coefficients[0]),
                "true_w": truth["w_num_tasks"],
                "fitted_b": model.intercept,
                "true_b": truth["b"],
                "pred_100": model.predict([100.0]),
                "pred_500": model.predict([500.0]),
            }
        )
    return oracle, rows


def test_fig3_cycles_linear_fitting(benchmark, cycles_bundle):
    oracle, rows = benchmark.pedantic(_fit, args=(cycles_bundle,), rounds=1, iterations=1)

    # The fitted slopes recover the ground truth within a few percent.
    for row in rows:
        assert abs(row["fitted_w"] - row["true_w"]) < 0.1 * row["true_w"]
        assert abs(row["fitted_b"] - row["true_b"]) < 0.3 * row["true_b"] + 50.0

    # The hardware settings present a meaningful trade-off: predicted 500-task
    # makespans are well separated and ordered by hardware capacity, with the
    # smallest configuration around the ~3000 s scale shown in Figure 3.
    preds_500 = [row["pred_500"] for row in rows]
    assert preds_500 == sorted(preds_500, reverse=True)
    assert preds_500[0] > 2.0 * preds_500[-1]
    assert 1500 < preds_500[0] < 4500

    # And the fit is tight: RMSE on the dataset is a small fraction of the scale.
    scores = oracle.score(cycles_bundle.frame)
    assert scores["r2"] > 0.95

    body = format_metric_table(
        rows,
        columns=["hardware", "fitted_w", "true_w", "fitted_b", "true_b", "pred_100", "pred_500"],
    )
    body += f"\n\nfull-fit RMSE = {scores['rmse']:.1f}s, R² = {scores['r2']:.3f} over {len(cycles_bundle.frame)} runs"
    print_report("Figure 3 — Cycles linear fitting on four synthetic hardware settings", body)
