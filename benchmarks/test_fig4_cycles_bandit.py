"""Figure 4: RMSE and accuracy of BanditWare on Cycles over 100 rounds.

The paper runs Algorithm 1 on the Cycles data (synthetic hardware, tolerance
of 20 seconds) with 10 simulations per round and reports that the bandit
reaches the error of the full 1316-point fit with only tens of online samples
and that its best-hardware accuracy climbs far above random guessing.
"""

from benchmarks.conftest import print_report, scaled
from repro.evaluation import build_experiment, format_series, run_experiment


def test_fig4_cycles_rmse_and_accuracy_over_time(benchmark, cycles_bundle):
    definition = build_experiment(
        "cycles_synthetic",
        n_rounds=scaled(100, 20),
        n_simulations=scaled(10, 3),
        seed=0,
    )
    outcome = benchmark.pedantic(run_experiment, args=(definition,), rounds=1, iterations=1)
    result = outcome.result

    final_round = result.n_rounds
    # Figure 4a: the RMSE converges toward the full-fit reference line.
    early_rmse, _ = result.rmse_at(min(5, final_round))
    late_rmse, _ = result.rmse_at(final_round)
    assert late_rmse < early_rmse
    assert late_rmse < 2.0 * result.reference_rmse

    # Figure 4b: accuracy far exceeds random guessing (0.25 for four arms)
    # and approaches the full-dataset accuracy.
    late_accuracy, _ = result.accuracy_at(final_round)
    assert late_accuracy > 2.0 * result.random_accuracy
    assert late_accuracy > 0.8 * result.reference_accuracy

    print_report(
        "Figure 4 — BanditWare on Cycles: RMSE (4a) and accuracy (4b) over rounds",
        format_series(result, every=10)
        + f"\n\nrmse gap to full fit at final round: {result.rmse_gap_to_reference(final_round) * 100:.1f}%",
    )
