"""Table 1: BurnPro3D inputs & outputs.

Regenerates the feature table the paper lists for the BP3D workload and checks
that the generated dataset actually carries every feature with sensible ranges.
"""

import numpy as np

from benchmarks.conftest import print_report
from repro.evaluation import format_metric_table
from repro.workloads import BP3D_FEATURE_DESCRIPTIONS, BP3D_FEATURES, BurnPro3DWorkload


def _build_table(bundle):
    rows = []
    for feature in BP3D_FEATURES:
        values = bundle.frame[feature].to_numpy(float)
        rows.append(
            {
                "feature": feature,
                "description": BP3D_FEATURE_DESCRIPTIONS[feature],
                "min": float(values.min()),
                "max": float(values.max()),
            }
        )
    return rows


def test_table1_bp3d_features(benchmark, bp3d_bundle):
    rows = benchmark.pedantic(_build_table, args=(bp3d_bundle,), rounds=1, iterations=1)

    # Table 1 lists exactly these seven features.
    assert [r["feature"] for r in rows] == [
        "surface_moisture",
        "canopy_moisture",
        "wind_direction",
        "wind_speed",
        "sim_time",
        "run_max_mem_rss_bytes",
        "area",
    ]
    by_name = {r["feature"]: r for r in rows}
    # Ranges consistent with the paper's setting: areas of 1-2.5 million m²,
    # wind directions covering the compass.
    assert by_name["area"]["max"] > 1.5e6
    assert by_name["wind_direction"]["max"] <= 360.0
    assert all(r["description"] for r in rows)

    print_report(
        "Table 1 — BurnPro3D inputs & outputs (feature schema + observed ranges)",
        format_metric_table(rows, columns=["feature", "min", "max", "description"]),
    )
