"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  Because the
reproduction is terminal-only, each benchmark *prints* the series or table the
corresponding figure plots (run with ``-s`` to see them) and asserts the
qualitative claims the paper makes about it.  ``pytest-benchmark`` records the
wall-clock cost of regenerating each artefact.

The default simulation budgets follow the paper (e.g. ``n_sim = 100`` and
``n_rounds = 50`` for the BP3D experiments); set the environment variable
``REPRO_BENCH_FAST=1`` to shrink them for a quick smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.data import build_bp3d_dataset, build_cycles_dataset, build_matmul_dataset

FAST = os.environ.get("REPRO_BENCH_FAST", "0") == "1"


def scaled(paper_value: int, fast_value: int) -> int:
    """Paper-scale budget unless REPRO_BENCH_FAST is set."""
    return fast_value if FAST else paper_value


@pytest.fixture(scope="session")
def cycles_bundle():
    return build_cycles_dataset()


@pytest.fixture(scope="session")
def bp3d_bundle():
    return build_bp3d_dataset()


@pytest.fixture(scope="session")
def matmul_bundle():
    return build_matmul_dataset()


def print_report(title: str, body: str) -> None:
    """Print a clearly delimited report block for one figure/table."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
