"""Figure 8: RMSE and R² of 100 linear-regression models on matrix-multiplication data.

The offline linear-regression recommender is trained 100 times on random
subsets of (a) the full 2520-run matmul dataset and (b) the truncated
``size >= 5000`` dataset.  Unlike BP3D, matmul runtime is strongly predictable
from the matrix size, so the paper reports high R² (~88 % on average) for both
variants; this benchmark reproduces that contrast with Figure 5.
"""

from benchmarks.conftest import print_report, scaled
from repro.baselines import train_regression_ensemble
from repro.data.splits import truncate_by_threshold
from repro.evaluation.reporting import format_histogram, format_metric_table


def _run(bundle, n_models):
    features = ["size"]
    full = train_regression_ensemble(
        bundle.frame, bundle.catalog, features, n_models=n_models, n_samples=25, seed=0
    )
    truncated_frame = truncate_by_threshold(bundle.frame, "size", 5000, keep="above")
    truncated = train_regression_ensemble(
        truncated_frame, bundle.catalog, features, n_models=n_models, n_samples=25, seed=1
    )
    return full, truncated


def test_fig8_matmul_linear_regression_spread(benchmark, matmul_bundle):
    n_models = scaled(100, 10)
    full, truncated = benchmark.pedantic(
        _run, args=(matmul_bundle, n_models), rounds=1, iterations=1
    )
    summary_full = full.summary()
    summary_trunc = truncated.summary()

    # Matmul runtime is highly predictable from size -- in stark contrast to
    # the BP3D ensembles of Figure 5.  On the truncated (size >= 5000) data the
    # mean R² matches the paper's ~88 %; on the full dataset our 25-sample
    # models extrapolate a locally-linear fit of the (cubic) size-runtime
    # curve from mostly-small matrices, so R² is lower than the paper's while
    # remaining far above the BP3D level (see EXPERIMENTS.md).
    assert summary_trunc["r2_mean"] > 0.7
    assert summary_full["r2_mean"] > 0.1
    assert summary_trunc["r2_mean"] > summary_full["r2_mean"]
    # And there is a visible spread across the 25-sample models.
    assert summary_full["rmse_range"] > 0
    assert summary_trunc["rmse_range"] > 0
    # Training such tiny models is fast (the paper quotes ~1.4-2.4 s on their
    # setup; here we only require that it is far below a second per model).
    assert summary_full["train_seconds_mean"] < 1.0

    rows = [
        {"ensemble": "rmse_all", **{k: v for k, v in summary_full.items() if k.startswith("rmse")}},
        {"ensemble": "rmse_truncated", **{k: v for k, v in summary_trunc.items() if k.startswith("rmse")}},
    ]
    r2_rows = [
        {"ensemble": "r2_all", **{k: v for k, v in summary_full.items() if k.startswith("r2")}},
        {"ensemble": "r2_truncated", **{k: v for k, v in summary_trunc.items() if k.startswith("r2")}},
    ]
    body = format_metric_table(rows) + "\n\n" + format_metric_table(r2_rows)
    body += "\n\n" + format_histogram(full.r2_scores, bins=8, title="R² distribution (full dataset)")
    body += f"\n\nmodels per ensemble: {n_models}, training subset size: 25"
    print_report("Figure 8 — linear regressions on matrix-multiplication data (RMSE and R²)", body)
