"""Benchmark the vectorised evaluation engine against the seed implementation.

Three benchmarks live here:

* ``run_bench`` -- the PR 1 engine benchmark (``BENCH_eval.json``);
* ``run_contention_bench`` -- the contention-suite benchmark
  (``BENCH_contention.json``): every registered scenario is played through
  the unified event-driven engine, timed per run, and the queue-aware
  headline numbers are recorded, plus the process-pool sweep throughput.
* ``run_interference_bench`` -- the interference-suite benchmark
  (``BENCH_interference.json``): each interference scenario is timed under
  its configured model *and* under the null model (same streams, full
  speed), recording the slowdown statistics, the progress-engine event
  overhead, and an exact NoInterference-parity check against the
  fixed-finish reference numbers.
* ``run_kernel_bench`` -- the array-kernel benchmark (``BENCH_kernel.json``):
  asserts that the structure-of-arrays simulator kernel reproduces every
  registered scenario's seed-0 summary **bit for bit** against the
  pre-refactor reference (``kernel_parity_reference.json``), then times the
  interference-heavy replication sweep and two co-residency stress runs
  against pre-refactor wall-clock baselines (``kernel_baseline.json``),
  recording the measured speedup factors either way.
* ``run_service_bench`` -- the serving-layer benchmark
  (``BENCH_service.json``): asserts the sharded ``RecommendationService``
  facade reproduces the pre-refactor reference stream **bit for bit** for
  every shard count (``service_parity_reference.json``) and that a
  checkpoint/restore round trip preserves state exactly, then drives the
  Zipfian / hotspot / bursty traffic mixes through the shard layer at one
  and four shards, recording recommendations/sec and p50/p95/p99 latency
  (event-driven simulated clock anchored to the real calibrated per-request
  cost) plus the real measured batching speedup.  It asserts the headline
  result: four-shard throughput on the Zipfian mix is at least twice the
  single-shard throughput.
* ``run_placement_bench`` -- the placement-suite benchmark
  (``BENCH_placement.json``): the interference scenarios are replayed under
  each placement policy (first-fit, best-fit, spread, pack,
  least-slowdown) across several seeds, recording per-policy slowdown and
  makespan plus an exact FirstFit-parity check of every registered scenario
  against the pre-refactor reference summaries.  It asserts the headline
  result: ``LeastSlowdown`` cuts mean slowdown strictly below ``Pack`` on
  ``interference-heavy`` for every benchmarked seed.

The engine benchmark measures wall-clock rounds/second of the replicated
BP3D online simulation (50 rounds x 10 replications by default) under three
engines:

* ``seed``     -- a verbatim reconstruction of the seed engine: per-arm OLS
  models that re-stack their full data store and re-solve ``lstsq`` after
  every observation, dict-based ``recommend``/``observe`` with per-call
  validation, audit estimates on every round, history tracking, and a full
  re-scoring of the evaluation set after every round of every replication
  (including the seed's ε-decay-during-seeding schedule).
* ``serial``   -- the batched engine (``OnlineSimulation.run``,
  ``n_workers=1``): incremental normal-equation refits, deferred whole-series
  scoring, validation hoisted out of the per-round path.
* ``parallel`` -- the same engine with a process pool over replications.

The headline ``speedup_serial_vs_seed`` compares the new engine to the seed
engine.  Because the seed baseline also carries the old ε schedule, engine
*mechanics* are verified separately: a legacy-style per-round loop with the
fixed semantics and the full solver is compared against the batched engine
running ``arm_model="ols_full"`` (expected: identical decisions, float-level
score differences), and the incremental solver is compared against the full
solver (expected: identical decisions; transient per-round score deviations
on ill-conditioned rounds that re-converge).  Results land in
``BENCH_eval.json`` at the repository root.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_engine.py [--rounds N] [--simulations N]
        [--workers N] [--repeats N] [--output PATH] [--suite engine|contention|all]

This module is not collected by pytest (no ``test_`` prefix); the ``slow``
marked test in ``tests/test_engine_parity.py`` exercises it on a small budget.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.core.banditware import BanditWare
from repro.core.models.base import ArmModel
from repro.core.policies import DecayingEpsilonGreedyPolicy
from repro.evaluation.experiment import build_experiment
from repro.evaluation.simulation import OnlineSimulation
from repro.utils.rng import SeedSequencePool
from repro.utils.validation import check_feature_matrix

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_eval.json"
DEFAULT_CONTENTION_OUTPUT = REPO_ROOT / "BENCH_contention.json"
DEFAULT_INTERFERENCE_OUTPUT = REPO_ROOT / "BENCH_interference.json"
DEFAULT_PLACEMENT_OUTPUT = REPO_ROOT / "BENCH_placement.json"
DEFAULT_KERNEL_OUTPUT = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_SERVICE_OUTPUT = REPO_ROOT / "BENCH_service.json"


class _SeedOLS(ArmModel):
    """The seed repository's LeastSquaresModel, reconstructed verbatim.

    Keeps the full data store in Python lists and re-stacks + re-solves
    ``numpy.linalg.lstsq`` on the ``[X | 1]`` design after every observation;
    every call path revalidates its inputs, exactly like the seed.
    """

    def __init__(self, n_features: int):
        super().__init__(n_features)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._w = np.zeros(self.n_features)
        self._b = 0.0

    @property
    def coefficients(self) -> np.ndarray:
        return self._w.copy()

    @property
    def intercept(self) -> float:
        return float(self._b)

    def _refit(self) -> None:
        X = np.vstack(self._X)
        y = np.asarray(self._y, dtype=float)
        design = np.hstack([X, np.ones((X.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        self._w = solution[:-1]
        self._b = float(solution[-1])

    def update(self, x, runtime: float) -> None:
        context = self._check_context(x)
        self._X.append(context)
        self._y.append(float(runtime))
        self._n_observations += 1
        self._refit()

    def update_vector(self, context: np.ndarray, runtime: float) -> None:
        # The seed had no trusted fast path; reproduce its per-call cost.
        self.update(context, runtime)

    def predict(self, x) -> float:
        context = self._check_context(x)
        return float(self._w @ context + self._b)

    def predict_vector(self, context: np.ndarray) -> float:
        return self.predict(context)

    def predict_batch(self, X) -> np.ndarray:
        X = check_feature_matrix(X, name="X", n_features=self.n_features)
        return np.asarray([self.predict(row) for row in X], dtype=float)


def _seed_score_models(sim: OnlineSimulation, W: np.ndarray, b: np.ndarray) -> tuple:
    """The seed's per-round scorer, verbatim (one round at a time)."""
    predictions_all = sim._X_eval @ W.T + b  # (n_eval, n_arms)
    predicted = predictions_all[np.arange(len(sim._y_eval)), sim._hw_idx]
    rmse_value = float(np.sqrt(np.mean((sim._y_eval - predicted) ** 2)))
    tol = sim.config.tolerance
    fastest = predictions_all.min(axis=1)
    limit = (1.0 + tol.ratio) * fastest + tol.seconds  # the seed's unclamped limit
    candidates = predictions_all <= limit[:, None]
    rank_matrix = np.where(candidates, sim._efficiency_rank[None, :], np.inf)
    chosen = rank_matrix.argmin(axis=1)
    correct = sim._acceptable[np.arange(len(chosen)), chosen]
    return rmse_value, float(np.mean(correct))


def _run_per_round_loop(
    sim: OnlineSimulation, seed_semantics: bool
) -> tuple:
    """The seed engine's replication loop on top of ``sim``'s data.

    With ``seed_semantics=True`` this is the full seed reconstruction
    (ε decays during the deterministic seeding rounds, seed scorer).  With
    ``seed_semantics=False`` it keeps the fixed selection semantics and the
    library scorer, isolating engine *mechanics* for the parity check.
    """
    cfg = sim.config
    pool = SeedSequencePool(cfg.seed)
    rmse = np.empty((cfg.n_simulations, cfg.n_rounds))
    accuracy = np.empty((cfg.n_simulations, cfg.n_rounds))
    n_pool = len(sim._workflow_pool)
    for s in range(cfg.n_simulations):
        rng = pool.generator(s)
        bandit = BanditWare(
            catalog=sim.catalog,
            feature_names=sim.feature_names,
            policy=DecayingEpsilonGreedyPolicy(
                epsilon0=cfg.epsilon0,
                decay=cfg.decay,
                tolerance=cfg.tolerance,
                decay_during_seeding=seed_semantics,
            ),
            arm_model_factory=_SeedOLS,
            seed=rng,
        )
        for r in range(cfg.n_rounds):
            features = dict(sim._workflow_pool[int(rng.integers(n_pool))])
            scaled = sim._scale_context(features)
            recommendation = bandit.recommend(scaled)
            runtime = sim.workload.observed_runtime(features, recommendation.hardware, rng)
            bandit.observe(scaled, recommendation.hardware, runtime)
            W, b = sim._coefficient_matrices(bandit)
            if seed_semantics:
                rmse[s, r], accuracy[s, r] = _seed_score_models(sim, W, b)
            else:
                rmse[s, r], accuracy[s, r] = sim._score_models(W, b)
    return rmse, accuracy


def _build_simulation(n_rounds: int, n_simulations: int, n_workers: int = 1, arm_model: str = "ols") -> OnlineSimulation:
    definition = build_experiment(
        "bp3d_all_features", n_simulations=n_simulations, n_rounds=n_rounds
    )
    config = replace(definition.config, n_workers=n_workers, arm_model=arm_model)
    return OnlineSimulation(
        workload=definition.workload,
        catalog=definition.catalog,
        evaluation_frame=definition.evaluation_frame,
        config=config,
        feature_names=definition.feature_names,
    )


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(
    n_rounds: int = 50,
    n_simulations: int = 10,
    n_workers: Optional[int] = None,
    repeats: int = 3,
    output: Optional[os.PathLike] = DEFAULT_OUTPUT,
) -> Dict:
    """Run all engines, check parity, and (optionally) write the JSON report."""
    if n_workers is None:
        n_workers = min(4, os.cpu_count() or 1)
    total_rounds = n_rounds * n_simulations

    sim = _build_simulation(n_rounds, n_simulations, n_workers=1)
    _run_per_round_loop(sim, seed_semantics=True)  # warm caches
    seed_seconds = _time_best(lambda: _run_per_round_loop(sim, seed_semantics=True), repeats)

    serial_result = sim.run()
    serial_seconds = _time_best(lambda: sim.run(), repeats)

    parallel_sim = _build_simulation(n_rounds, n_simulations, n_workers=n_workers)
    parallel_result = parallel_sim.run()
    parallel_seconds = (
        _time_best(lambda: parallel_sim.run(), repeats) if n_workers > 1 else serial_seconds
    )

    # Parity 1: process-pool replications must be bit-identical to serial.
    serial_vs_parallel = bool(
        np.array_equal(serial_result.rmse, parallel_result.rmse)
        and np.array_equal(serial_result.accuracy, parallel_result.accuracy)
    )

    # Parity 2: the batched engine with the full (seed) solver against a
    # per-round legacy loop with the same fixed semantics.
    full_sim = _build_simulation(n_rounds, n_simulations, n_workers=1, arm_model="ols_full")
    full_result = full_sim.run()
    legacy_rmse, legacy_accuracy = _run_per_round_loop(full_sim, seed_semantics=False)
    rmse_scale = max(float(np.abs(legacy_rmse).max()), 1e-12)
    engine_vs_legacy_rmse = float(np.abs(legacy_rmse - full_result.rmse).max() / rmse_scale)
    engine_vs_legacy_accuracy = float(np.abs(legacy_accuracy - full_result.accuracy).max())

    # Parity 3: incremental vs full solver (identical decisions expected;
    # transient fp-amplified score differences allowed on ill-conditioned
    # rounds).
    inc_vs_full_rmse = float(np.abs(serial_result.rmse - full_result.rmse).max() / rmse_scale)
    inc_vs_full_final = float(
        np.abs(serial_result.mean_rmse()[-1] - full_result.mean_rmse()[-1]) / rmse_scale
    )

    best_seconds = min(serial_seconds, parallel_seconds)
    report = {
        "benchmark": "engine_bp3d",
        "n_rounds": n_rounds,
        "n_simulations": n_simulations,
        "n_eval_rows": len(sim._y_eval),
        "cpu_count": os.cpu_count(),
        "seed_seconds": seed_seconds,
        "seed_rounds_per_sec": total_rounds / seed_seconds,
        "serial_seconds": serial_seconds,
        "serial_rounds_per_sec": total_rounds / serial_seconds,
        "parallel_workers": n_workers,
        "parallel_seconds": parallel_seconds,
        "parallel_rounds_per_sec": total_rounds / parallel_seconds,
        "speedup_serial_vs_seed": seed_seconds / serial_seconds,
        "speedup_best_vs_seed": seed_seconds / best_seconds,
        "parity": {
            "serial_vs_parallel_identical": serial_vs_parallel,
            "engine_vs_legacy_rmse_max_rel_diff": engine_vs_legacy_rmse,
            "engine_vs_legacy_accuracy_max_abs_diff": engine_vs_legacy_accuracy,
            "incremental_vs_full_rmse_max_rel_diff": inc_vs_full_rmse,
            "incremental_vs_full_final_rmse_rel_diff": inc_vs_full_final,
        },
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_contention_bench(
    seeds: int = 3,
    n_workers: Optional[int] = None,
    repeats: int = 3,
    output: Optional[os.PathLike] = DEFAULT_CONTENTION_OUTPUT,
) -> Dict:
    """Time every registered contention scenario on the unified engine.

    Per scenario: best-of-``repeats`` wall clock of one seed-0 run plus the
    seed-0 queue-aware headline numbers (queue seconds, occupancy, wasted
    and node-pool cost, queue-inclusive regret).  A final section times the
    whole suite swept over ``seeds`` seeds serially vs. on the process pool
    (scenario pickling is what makes the fan-out possible).
    """
    from repro.evaluation.contention import CONTENTION_SCENARIOS, build_scenario, run_scenario
    from repro.evaluation.engine import run_scenario_sweep

    if n_workers is None:
        n_workers = min(4, os.cpu_count() or 1)
    scenarios: Dict[str, Dict] = {}
    for name in sorted(CONTENTION_SCENARIOS):
        # The warm-up run doubles as the (deterministic) summary source.
        summary = run_scenario(build_scenario(name, seed=0)).summary()
        seconds = _time_best(lambda: run_scenario(build_scenario(name, seed=0)), repeats)
        scenarios[name] = {
            "seconds_per_run": seconds,
            "workflows": summary["workflows"],
            "total_queue_seconds": summary["total_queue_seconds"],
            "occupancy_cost": summary["occupancy_cost"],
            "wasted_occupancy_cost": summary["wasted_occupancy_cost"],
            "node_pool_cost": summary["node_pool_cost"],
            "preemptions": summary["preemptions"],
            "queue_inclusive_regret": summary["queue_inclusive_regret"],
            "accuracy": summary["accuracy"],
        }
    sweep = [
        build_scenario(name, seed=seed)
        for name in sorted(CONTENTION_SCENARIOS)
        for seed in range(seeds)
    ]
    serial_seconds = _time_best(lambda: run_scenario_sweep(sweep, n_workers=1), repeats)
    pool_seconds = (
        _time_best(lambda: run_scenario_sweep(sweep, n_workers=n_workers), repeats)
        if n_workers > 1
        else serial_seconds
    )
    report = {
        "benchmark": "contention_suite",
        "cpu_count": os.cpu_count(),
        "seeds": seeds,
        "scenarios": scenarios,
        "sweep_runs": len(sweep),
        "sweep_serial_seconds": serial_seconds,
        "sweep_pool_workers": n_workers,
        "sweep_pool_seconds": pool_seconds,
        "sweep_speedup": serial_seconds / pool_seconds if pool_seconds else 1.0,
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_interference_bench(
    repeats: int = 3,
    output: Optional[os.PathLike] = DEFAULT_INTERFERENCE_OUTPUT,
) -> Dict:
    """Time the interference suite and pin the NoInterference parity.

    Per interference scenario: best-of-``repeats`` wall clock under the
    configured model and under the null counterfactual (identical tenants,
    streams and seeds -- the difference is pure progress-engine overhead
    plus the stretched schedule), with the seed-0 slowdown headline numbers.
    The report also re-runs the ``saturated`` scenario and asserts its
    decision stream and headline regret are *exactly* the fixed-finish
    engine's reference values, so CI can fail the suite on any NoInterference
    drift without re-running the whole test battery.
    """
    from repro.evaluation.contention import build_scenario, run_scenario

    pin = json.loads(
        (Path(__file__).resolve().parent / "interference_parity_reference.json").read_text()
    )
    reference = pin["summary"]
    parity = run_scenario(build_scenario(pin["scenario"], seed=pin["seed"])).summary()
    parity_exact = all(parity[key] == value for key, value in reference.items())

    scenarios: Dict[str, Dict] = {}
    for name in ("interference-light", "interference-heavy", "noisy-neighbor"):
        contended = run_scenario(build_scenario(name, seed=0)).summary()
        seconds = _time_best(lambda: run_scenario(build_scenario(name, seed=0)), repeats)
        null_seconds = _time_best(
            lambda: run_scenario(build_scenario(name, seed=0).with_interference(None)),
            repeats,
        )
        scenarios[name] = {
            "seconds_per_run": seconds,
            "seconds_per_run_null_model": null_seconds,
            "workflows": contended["workflows"],
            "mean_slowdown": contended["mean_slowdown"],
            "max_slowdown": contended["max_slowdown"],
            "interference_seconds": contended["interference_seconds"],
            "interference_inclusive_regret": contended["interference_inclusive_regret"],
            "cumulative_regret": contended["cumulative_regret"],
            "makespan_seconds": contended["makespan_seconds"],
            "accuracy": contended["accuracy"],
        }
    report = {
        "benchmark": "interference_suite",
        "cpu_count": os.cpu_count(),
        "scenarios": scenarios,
        "no_interference_parity_exact": parity_exact,
        "no_interference_reference": reference,
        "no_interference_observed": {key: parity[key] for key in reference},
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    if not parity_exact:
        raise AssertionError(
            "NoInterference parity drift: the progress-based engine no longer "
            f"reproduces the fixed-finish reference exactly ({report['no_interference_observed']} "
            f"!= {reference})"
        )
    return report


def run_placement_bench(
    seeds: int = 3,
    repeats: int = 3,
    output: Optional[os.PathLike] = DEFAULT_PLACEMENT_OUTPUT,
) -> Dict:
    """Benchmark placement policies and pin the FirstFit parity.

    Two guarantees are asserted (CI runs this suite in smoke mode):

    * **FirstFit parity** -- every registered scenario's seed-0 summary
      matches the pre-placement-refactor reference values in
      ``placement_parity_reference.json`` exactly (the refactor decoupled
      ordering from placement without changing the default behaviour);
    * **interference-aware placement pays** -- on ``interference-heavy``,
      ``LeastSlowdown`` achieves strictly lower mean slowdown than ``Pack``
      for *every* benchmarked seed.
    """
    from repro.evaluation.contention import build_scenario, run_scenario

    pin = json.loads(
        (Path(__file__).resolve().parent / "placement_parity_reference.json").read_text()
    )
    parity_drift: Dict[str, Dict] = {}
    for scenario_name, reference in pin["scenarios"].items():
        summary = run_scenario(build_scenario(scenario_name, seed=pin["seed"])).summary()
        drift = {
            key: {"reference": value, "observed": summary[key]}
            for key, value in reference.items()
            if summary[key] != value
        }
        if drift:
            parity_drift[scenario_name] = drift
    parity_exact = not parity_drift

    policies = ["first-fit", "best-fit", "spread", "pack", "least-slowdown"]
    comparison_scenarios = ["interference-heavy", "spread-vs-pack", "hetero-nodes"]
    scenarios: Dict[str, Dict] = {}
    for scenario_name in comparison_scenarios:
        per_policy: Dict[str, Dict] = {}
        for policy in policies:
            slowdowns: List[float] = []
            makespans: List[float] = []
            regrets: List[float] = []
            for seed in range(seeds):
                scenario = build_scenario(scenario_name, seed=seed).with_placement(policy)
                summary = run_scenario(scenario).summary()
                slowdowns.append(summary["mean_slowdown"])
                makespans.append(summary["makespan_seconds"])
                regrets.append(summary["interference_inclusive_regret"])
            bench_scenario = build_scenario(scenario_name, seed=0).with_placement(policy)
            seconds = _time_best(lambda: run_scenario(bench_scenario), repeats)
            per_policy[policy] = {
                "seconds_per_run": seconds,
                "mean_slowdown_per_seed": slowdowns,
                "mean_slowdown": float(np.mean(slowdowns)),
                "makespan_seconds_mean": float(np.mean(makespans)),
                "interference_inclusive_regret_mean": float(np.mean(regrets)),
            }
        scenarios[scenario_name] = per_policy

    heavy = scenarios["interference-heavy"]
    least_beats_pack = all(
        ls < pk
        for ls, pk in zip(
            heavy["least-slowdown"]["mean_slowdown_per_seed"],
            heavy["pack"]["mean_slowdown_per_seed"],
        )
    )
    report = {
        "benchmark": "placement_suite",
        "cpu_count": os.cpu_count(),
        "seeds": seeds,
        "policies": policies,
        "scenarios": scenarios,
        "first_fit_parity_exact": parity_exact,
        "first_fit_parity_drift": parity_drift,
        "least_slowdown_beats_pack_on_interference_heavy": least_beats_pack,
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    if not parity_exact:
        raise AssertionError(
            "FirstFit placement parity drift: the decoupled placement engine no "
            f"longer reproduces the pre-refactor reference exactly ({parity_drift})"
        )
    if not least_beats_pack:
        raise AssertionError(
            "LeastSlowdown no longer beats Pack on interference-heavy: "
            f"{heavy['least-slowdown']['mean_slowdown_per_seed']} vs "
            f"{heavy['pack']['mean_slowdown_per_seed']}"
        )
    return report


def run_service_bench(
    n_requests: int = 2000,
    repeats: int = 3,
    shard_counts: tuple = (1, 2, 4),
    output: Optional[os.PathLike] = DEFAULT_SERVICE_OUTPUT,
) -> Dict:
    """Benchmark the sharded serving layer and pin its parity guarantees.

    Three guarantees are asserted (CI runs this suite in smoke mode):

    * **facade parity** -- the sharded ``RecommendationService`` replays the
      pre-refactor reference stream bit for bit at every shard count
      (``service_parity_reference.json``);
    * **checkpoint round trip** -- checkpoint -> restore reproduces the
      service state exactly (same recommenders, tickets, history, pending
      set);
    * **sharding pays** -- four-shard throughput on the Zipfian mix is at
      least 2x single-shard.

    Throughput/latency numbers come from the event-driven load harness: real
    recommendations and real learning on a simulated clock anchored to the
    real calibrated per-request cost (reported as
    ``measured_cost_per_request_seconds``), so the shard scaling measures
    the architecture rather than this container's core count.  The real
    wall-clock batching speedup (coalesced entry points vs one call per
    request) is measured separately.
    """
    import sys

    benchmarks_dir = str(Path(__file__).resolve().parent)
    if benchmarks_dir not in sys.path:  # imported as a module (tests, CI)
        sys.path.insert(0, benchmarks_dir)
    from capture_service_parity import (
        REFERENCE_PATH,
        build_reference_service,
        drive_reference_stream,
        run_reference_stream,
        summarise_service,
    )
    from repro.evaluation.service_load import (
        ServiceLoadConfig,
        calibrate_cost_per_request,
        run_service_load,
    )
    from repro.integration import RecommendationService

    # --- facade parity: sharded service vs pre-refactor reference stream ---
    reference = json.loads(REFERENCE_PATH.read_text())
    parity_drift: Dict[str, str] = {}
    for n_shards in (1, 2, 3, 4):
        summary = json.loads(
            json.dumps(run_reference_stream(n_shards=n_shards, n_rounds=reference["n_rounds"]))
        )
        if summary != reference["summary"]:
            parity_drift[str(n_shards)] = "summary mismatch vs reference"
    parity_exact = not parity_drift

    # --- checkpoint round trip: restored state is bit-identical -----------
    service, workloads = build_reference_service(n_shards=3)
    drive_reference_stream(service, workloads, n_rounds=30)
    restored = RecommendationService.restore(service.checkpoint())
    checkpoint_parity = json.loads(json.dumps(summarise_service(service, []))) == json.loads(
        json.dumps(summarise_service(restored, []))
    )

    # --- real wall-clock anchors ------------------------------------------
    cost = min(calibrate_cost_per_request(seed=s) for s in range(repeats))
    from repro.evaluation.service_load import build_load_service

    batch_size = 64

    def _unbatched_cycle() -> None:
        svc, wls = build_load_service(ServiceLoadConfig(n_apps=4, n_shards=1, seed=0))
        rng = np.random.default_rng(0)
        apps = list(wls)
        tickets = []
        for i in range(batch_size):
            app = apps[i % len(apps)]
            tickets.append((app, svc.submit_workflow(app, wls[app].sample_features(rng))))
        for app, ticket in tickets:
            runtime = wls[app].observed_runtime(
                ticket.features, ticket.recommendation.hardware, rng
            )
            svc.complete_workflow(ticket.ticket_id, runtime)

    def _batched_cycle() -> None:
        svc, wls = build_load_service(ServiceLoadConfig(n_apps=4, n_shards=1, seed=0))
        rng = np.random.default_rng(0)
        apps = list(wls)
        completions = []
        for app in apps:
            share = batch_size // len(apps)
            features = [wls[app].sample_features(rng) for _ in range(share)]
            for ticket in svc.submit_workflows(app, features):
                runtime = wls[app].observed_runtime(
                    ticket.features, ticket.recommendation.hardware, rng
                )
                completions.append((ticket.ticket_id, runtime))
        svc.complete_workflows(completions)

    unbatched_seconds = _time_best(_unbatched_cycle, repeats)
    batched_seconds = _time_best(_batched_cycle, repeats)
    batching_speedup = unbatched_seconds / batched_seconds

    # --- traffic mixes through the shard layer (simulated clock) ----------
    mixes: Dict[str, Dict[str, Dict]] = {}
    for mix in ("zipfian", "hotspot", "bursty"):
        per_shards: Dict[str, Dict] = {}
        for n_shards in shard_counts:
            config = ServiceLoadConfig(
                n_shards=n_shards,
                n_requests=n_requests,
                cost_per_request=cost,
                saturation_shards=max(shard_counts),
            )
            per_shards[str(n_shards)] = run_service_load(mix, config).to_dict()
        mixes[mix] = per_shards

    max_shards = str(max(shard_counts))
    zipf_ratio = (
        mixes["zipfian"][max_shards]["throughput_rps"]
        / mixes["zipfian"]["1"]["throughput_rps"]
    )
    sharding_pays = zipf_ratio >= 2.0

    report = {
        "benchmark": "service_suite",
        "cpu_count": os.cpu_count(),
        "n_requests": n_requests,
        "clock": "simulated (event-driven; anchored to measured per-request cost)",
        "measured_cost_per_request_seconds": cost,
        "measured_recommendations_per_second": 1.0 / cost,
        "batching_speedup_wallclock": batching_speedup,
        "facade_parity_exact": parity_exact,
        "facade_parity_drift": parity_drift,
        "checkpoint_roundtrip_exact": checkpoint_parity,
        "mixes": mixes,
        "zipfian_throughput_ratio": zipf_ratio,
        "sharding_pays": sharding_pays,
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    if not parity_exact:
        raise AssertionError(
            "service facade parity drift: the sharded RecommendationService no "
            f"longer reproduces the pre-refactor reference exactly ({parity_drift})"
        )
    if not checkpoint_parity:
        raise AssertionError(
            "service checkpoint round trip is no longer exact: restored state "
            "differs from the checkpointed service"
        )
    if not sharding_pays:
        raise AssertionError(
            f"sharding no longer pays: {max_shards}-shard Zipfian throughput is "
            f"only {zipf_ratio:.2f}x single-shard (need >= 2.0x)"
        )
    return report


def _kernel_stress(n_pods: int, node_cpus: int, node_memory_gb: float, profile: bool = False):
    """The kernel stress workload: one fat node, every pod co-resident.

    This must mirror ``kernel_baseline.json`` exactly -- the baseline
    seconds were measured on this workload at the pre-refactor commit.
    ``n_pods`` identical-shaped pods (2 CPUs / 8 GiB each) arrive one per
    second on a node big enough to run them all side by side under
    ``LinearSlowdown``, so every arrival and finish reschedules every
    resident: the worst case for per-topology-change interference
    evaluation and progress re-integration.
    """
    from repro.cluster.interference import LinearSlowdown
    from repro.cluster.node import Node
    from repro.cluster.simulator import ClusterSimulator
    from repro.hardware import HardwareCatalog, HardwareConfig
    from repro.workloads import LinearRuntimeWorkload

    catalog = HardwareCatalog([HardwareConfig("s", cpus=2, memory_gb=8)])
    workload = LinearRuntimeWorkload(
        feature_ranges={"size": (1.0, 8.0)},
        coefficients={"s": ({"size": 100.0}, 50.0)},
        noise_sigma=0.0,
        name="stress",
    )
    sim = ClusterSimulator(
        nodes=[Node("fat", cpus=node_cpus, memory_gb=node_memory_gb)],
        catalog=catalog,
        workload=workload,
        seed=0,
        interference=LinearSlowdown(alpha=0.5),
    )
    kernel_profile = sim.enable_profiling() if profile else None
    for i in range(n_pods):
        sim.submit({"size": 1.0 + (i % 7)}, "s", at_time=float(i))
    sim.run_until_idle()
    return kernel_profile


def _event_microbench(n: int = 50_000) -> Dict:
    """Per-event construction cost: dict-payload push vs payload-free frontier push.

    A micro-bench note for the kernel suite: ``push_frontier`` builds the
    event via ``__new__`` with an interned kind, a slot-field node slot and
    ``payload=None``, skipping the kwargs dict and keyword plumbing of the
    generic ``push`` path the hot loop used to take.
    """
    from repro.cluster.events import EventQueue

    q = EventQueue()
    started = time.perf_counter()
    for i in range(n):
        q.push(float(i), "pod_finished", pod_name="x", attempt=0, epoch=i)
    push_seconds = time.perf_counter() - started
    q = EventQueue()
    started = time.perf_counter()
    for i in range(n):
        q.push_frontier(float(i), 0)
    frontier_seconds = time.perf_counter() - started
    return {
        "events": n,
        "push_ns_per_event": push_seconds / n * 1e9,
        "push_frontier_ns_per_event": frontier_seconds / n * 1e9,
        "frontier_push_speedup": push_seconds / frontier_seconds,
        "note": (
            "push_frontier skips the per-event payload dict and keyword "
            "plumbing (interned kind, slot field, __new__)"
        ),
    }


def run_kernel_bench(
    repeats: int = 3,
    output: Optional[os.PathLike] = DEFAULT_KERNEL_OUTPUT,
) -> Dict:
    """Benchmark the array kernel and pin its bit-identical parity.

    Asserted (CI runs this suite in smoke mode):

    * **kernel parity** -- every registered contention scenario's seed-0
      summary matches ``kernel_parity_reference.json`` (captured at the
      pre-array-kernel commit) *exactly*: the structure-of-arrays kernel is
      a pure representation change, never a semantic one;
    * **frontier parity** -- every scenario x {FirstFit, LeastSlowdown}
      fingerprint (summary, decision streams, accounting-row digest)
      matches ``frontier_parity_reference.json`` (captured at the
      per-pod-event commit) *exactly*: the per-node finish frontier changes
      heap traffic, never results;
    * **event-count bound** -- the stress runs process at most
      ``4 x n_pods + topology_changes`` events: heap traffic must stay
      O(completions + topology changes), not O(pods x changes);
    * **kernel throughput floors** -- the co-residency stress runs at least
      2x faster than the per-pod-event kernel (``frontier_baseline.json``)
      and at least 2x faster than the pre-refactor per-object engine
      (``kernel_baseline.json``; the measured factors are recorded
      verbatim, whatever they are).
    """
    from repro.evaluation.contention import (
        CONTENTION_SCENARIOS,
        build_scenario,
        run_scenario,
        scenario_fingerprint,
    )
    from repro.evaluation.engine import run_scenario_replications

    bench_dir = Path(__file__).resolve().parent
    reference = json.loads((bench_dir / "kernel_parity_reference.json").read_text())
    baseline = json.loads((bench_dir / "kernel_baseline.json").read_text())
    frontier_reference = json.loads(
        (bench_dir / "frontier_parity_reference.json").read_text()
    )
    frontier_baseline = json.loads((bench_dir / "frontier_baseline.json").read_text())

    parity_drift: Dict[str, Dict] = {}
    for name in sorted(CONTENTION_SCENARIOS):
        summary = run_scenario(build_scenario(name, seed=0)).summary()
        pinned = reference[name]
        drift = {
            key: {"reference": value, "observed": summary.get(key)}
            for key, value in pinned.items()
            if summary.get(key) != value
        }
        if drift:
            parity_drift[name] = drift
    parity_exact = not parity_drift

    frontier_drift: Dict[str, List[str]] = {}
    for name, per_placement in sorted(frontier_reference["scenarios"].items()):
        for placement, pinned in per_placement.items():
            observed = scenario_fingerprint(name, placement)
            bad = [key for key in pinned if observed.get(key) != pinned[key]]
            if bad:
                frontier_drift[f"{name}/{placement}"] = bad
    frontier_exact = not frontier_drift

    sweep_cfg = baseline["replication_sweep"]
    sweep_scenario = build_scenario(sweep_cfg["scenario"], seed=0)
    sweep_seconds = _time_best(
        lambda: run_scenario_replications(
            sweep_scenario, sweep_cfg["n_replications"], n_workers=1
        ),
        repeats,
    )

    stresses: Dict[str, Dict] = {}
    for key in ("kernel_stress", "kernel_stress_512"):
        cfg = baseline[key]
        pr6 = frontier_baseline[key]
        seconds = _time_best(
            lambda: _kernel_stress(
                cfg["n_pods"], cfg["node"]["cpus"], cfg["node"]["memory_gb"]
            ),
            repeats,
        )
        profile = _kernel_stress(
            cfg["n_pods"], cfg["node"]["cpus"], cfg["node"]["memory_gb"], profile=True
        )
        # Every reschedule call is one topology change touching a node.
        event_bound = 4 * cfg["n_pods"] + profile.reschedule_calls
        stresses[key] = {
            "n_pods": cfg["n_pods"],
            "node": dict(cfg["node"]),
            "seconds": seconds,
            "baseline_seconds": cfg["seconds"],
            "speedup_vs_pre_refactor": cfg["seconds"] / seconds,
            "event_engine_seconds": pr6["seconds"],
            "speedup_vs_event_engine": pr6["seconds"] / seconds,
            "events_processed": int(profile.events_processed),
            "events_processed_before_frontier": pr6["events_processed"],
            "events_processed_bound": int(event_bound),
        }

    # One profiled stress run: where the remaining kernel time goes and
    # what the heap traffic looks like under the frontier protocol.
    profile = _kernel_stress(
        baseline["kernel_stress"]["n_pods"],
        baseline["kernel_stress"]["node"]["cpus"],
        baseline["kernel_stress"]["node"]["memory_gb"],
        profile=True,
    )

    report = {
        "benchmark": "array_kernel",
        "cpu_count": os.cpu_count(),
        "baseline_commit": baseline["captured_at_commit"],
        "event_engine_commit": frontier_baseline["captured_at_commit"],
        "kernel_parity_exact": parity_exact,
        "kernel_parity_drift": parity_drift,
        "frontier_parity_exact": frontier_exact,
        "frontier_parity_drift": frontier_drift,
        "scenarios_pinned": len(reference),
        "frontier_runs_pinned": sum(
            len(v) for v in frontier_reference["scenarios"].values()
        ),
        "replication_sweep": {
            "scenario": sweep_cfg["scenario"],
            "n_replications": sweep_cfg["n_replications"],
            "seconds": sweep_seconds,
            "baseline_seconds": sweep_cfg["seconds"],
            "speedup_vs_pre_refactor": sweep_cfg["seconds"] / sweep_seconds,
            "event_engine_seconds": frontier_baseline["replication_sweep"]["seconds"],
            "speedup_vs_event_engine": frontier_baseline["replication_sweep"]["seconds"]
            / sweep_seconds,
        },
        "stress": stresses,
        "stress_profile": profile.as_dict() if profile else None,
        "event_microbench": _event_microbench(),
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    if not parity_exact:
        raise AssertionError(
            "array-kernel parity drift: the SoA kernel no longer reproduces "
            f"the pre-refactor scenario summaries exactly ({parity_drift})"
        )
    if not frontier_exact:
        raise AssertionError(
            "event-frontier parity drift: the frontier engine no longer "
            "reproduces the per-pod-event engine's results exactly "
            f"({frontier_drift})"
        )
    floor = 2.0
    for key, stress in stresses.items():
        if stress["speedup_vs_pre_refactor"] < floor:
            raise AssertionError(
                f"kernel throughput regression: {key} runs only "
                f"{stress['speedup_vs_pre_refactor']:.2f}x faster than the "
                f"pre-refactor engine (floor: {floor}x)"
            )
        if stress["speedup_vs_event_engine"] < floor:
            raise AssertionError(
                f"frontier throughput regression: {key} runs only "
                f"{stress['speedup_vs_event_engine']:.2f}x faster than the "
                f"per-pod-event kernel (floor: {floor}x)"
            )
        if stress["events_processed"] > stress["events_processed_bound"]:
            raise AssertionError(
                f"event-count regression: {key} processed "
                f"{stress['events_processed']} events, above the frontier "
                f"bound 4 x n_pods + topology_changes = "
                f"{stress['events_processed_bound']}"
            )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument("--simulations", type=int, default=10)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT))
    parser.add_argument(
        "--contention-output",
        default=str(DEFAULT_CONTENTION_OUTPUT),
        help="where the contention-suite report lands",
    )
    parser.add_argument(
        "--interference-output",
        default=str(DEFAULT_INTERFERENCE_OUTPUT),
        help="where the interference-suite report lands",
    )
    parser.add_argument(
        "--placement-output",
        default=str(DEFAULT_PLACEMENT_OUTPUT),
        help="where the placement-suite report lands",
    )
    parser.add_argument(
        "--placement-seeds",
        type=int,
        default=3,
        help="seeds per policy in the placement suite (smoke mode: keep at 3, --repeats 1)",
    )
    parser.add_argument(
        "--kernel-output",
        default=str(DEFAULT_KERNEL_OUTPUT),
        help="where the array-kernel report lands",
    )
    parser.add_argument(
        "--service-output",
        default=str(DEFAULT_SERVICE_OUTPUT),
        help="where the serving-layer report lands",
    )
    parser.add_argument(
        "--service-requests",
        type=int,
        default=2000,
        help="requests per mix in the service suite (smoke mode: ~300)",
    )
    parser.add_argument(
        "--suite",
        choices=[
            "engine",
            "contention",
            "interference",
            "placement",
            "kernel",
            "service",
            "all",
        ],
        default="all",
        help="which benchmark(s) to run",
    )
    args = parser.parse_args(argv)
    reports = []
    if args.suite in ("engine", "all"):
        reports.append(
            run_bench(
                n_rounds=args.rounds,
                n_simulations=args.simulations,
                n_workers=args.workers,
                repeats=args.repeats,
                output=args.output,
            )
        )
    if args.suite in ("contention", "all"):
        reports.append(
            run_contention_bench(
                n_workers=args.workers,
                repeats=args.repeats,
                output=args.contention_output,
            )
        )
    if args.suite in ("interference", "all"):
        reports.append(
            run_interference_bench(
                repeats=args.repeats,
                output=args.interference_output,
            )
        )
    if args.suite in ("placement", "all"):
        reports.append(
            run_placement_bench(
                seeds=args.placement_seeds,
                repeats=args.repeats,
                output=args.placement_output,
            )
        )
    if args.suite in ("kernel", "all"):
        reports.append(
            run_kernel_bench(
                repeats=args.repeats,
                output=args.kernel_output,
            )
        )
    if args.suite in ("service", "all"):
        reports.append(
            run_service_bench(
                n_requests=args.service_requests,
                repeats=args.repeats,
                output=args.service_output,
            )
        )
    for report in reports:
        for key, value in report.items():
            print(f"{key}: {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
