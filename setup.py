"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that
``pip install -e .`` also works in offline environments whose setuptools
lacks PEP 660 editable-wheel support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
