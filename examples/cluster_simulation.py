"""Resource contention on a shared cluster: why hardware sizing matters.

The paper's introduction motivates BanditWare with the costs of
misallocation on shared platforms: contention, queueing and wasted capacity.
This example makes that concrete with the Kubernetes-like cluster simulator.
Two allocation strategies submit the same 30 Cycles workflows to the same
small cluster:

* **oversized**: every workflow requests the largest configuration,
* **banditware**: each workflow requests what a warm-started BanditWare
  recommender (with a 60 s tolerance) suggests.

Because oversized requests exhaust the nodes' CPUs, later pods queue; the
right-sized requests keep the cluster flowing and finish the batch sooner.

Run with::

    python examples/cluster_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import BanditWare, CyclesWorkload, ToleranceConfig, synthetic_catalog
from repro.cluster import BestFitScheduler, ClusterSimulator, Node
from repro.workloads import TraceGenerator


def build_cluster(workload, catalog, seed):
    nodes = [
        Node("node-a", cpus=12, memory_gb=48),
        Node("node-b", cpus=12, memory_gb=48),
    ]
    return ClusterSimulator(
        workload=workload,
        catalog=catalog,
        nodes=nodes,
        scheduler=BestFitScheduler(),
        seed=seed,
    )


def submit_batch(cluster, workflows, choose_hardware):
    for features in workflows:
        cluster.submit(features, choose_hardware(features), at_time=0.0)
    runs = cluster.run_until_idle()
    total_queue = sum(r.queue_seconds for r in runs)
    return cluster.now, total_queue, runs


def main() -> None:
    catalog = synthetic_catalog(4)
    workload = CyclesWorkload()
    rng = np.random.default_rng(3)
    workflows = [workload.sample_features(rng) for _ in range(30)]

    # Warm-start a recommender from a small historical trace.  Recommendations
    # allow a 50% slowdown per workflow in exchange for lighter-weight
    # requests, which is what keeps the shared cluster flowing.
    history = TraceGenerator(workload, catalog, seed=9).generate_frame(15, grid=True)
    tolerance = ToleranceConfig(ratio=0.5)
    recommender = BanditWare(
        catalog=catalog,
        feature_names=["num_tasks"],
        tolerance=tolerance,
        seed=1,
    )
    recommender.warm_start(history)

    largest = catalog[len(catalog) - 1]

    oversized_cluster = build_cluster(workload, catalog, seed=0)
    makespan_big, queue_big, _ = submit_batch(
        oversized_cluster, workflows, lambda features: largest
    )

    bandit_cluster = build_cluster(workload, catalog, seed=0)
    makespan_bw, queue_bw, runs_bw = submit_batch(
        bandit_cluster,
        workflows,
        lambda features: recommender.best_hardware(features, tolerance=tolerance),
    )

    print(f"30 Cycles workflows on a 2-node, 24-core cluster\n")
    print(f"{'strategy':<12} {'batch makespan':>15} {'total queueing':>15}")
    print(f"{'oversized':<12} {makespan_big:>14.0f}s {queue_big:>14.0f}s")
    print(f"{'banditware':<12} {makespan_bw:>14.0f}s {queue_bw:>14.0f}s")

    chosen = {}
    for run in runs_bw:
        chosen[run.record.hardware] = chosen.get(run.record.hardware, 0) + 1
    print(f"\nBanditWare's hardware mix: {chosen}")
    if makespan_bw < makespan_big:
        saved = (1.0 - makespan_bw / makespan_big) * 100
        print(f"right-sizing finished the batch {saved:.1f}% sooner and queued far less.")


if __name__ == "__main__":
    main()
