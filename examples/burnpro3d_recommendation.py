"""BurnPro3D on the National Data Platform: the service-level view.

The paper positions BanditWare as a recommendation service for the National
Data Platform (NDP): fire scientists submit prescribed-burn simulations, the
platform recommends a Kubernetes resource configuration, and the observed
runtimes feed back into the recommender.  This example exercises that whole
path using the simulated NDP integration layer:

1. seed the platform's run-history store with historical BP3D runs,
2. register the application (warm-starting its recommender from history),
3. stream new burn-unit simulations through the service against the cluster
   simulator, with a 5 % slowdown tolerance so near-equivalent but cheaper
   configurations are preferred,
4. report what was recommended and how much resource-time was saved relative
   to always using the largest configuration.

Run with::

    python examples/burnpro3d_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterSimulator
from repro.core import ToleranceConfig
from repro.data import build_bp3d_dataset
from repro.hardware import ResourceCostModel
from repro.integration import RecommendationService, RunHistoryStore
from repro.utils.logging import EventLog
from repro.workloads import RunRecord


def main() -> None:
    bundle = build_bp3d_dataset()
    catalog = bundle.catalog
    workload = bundle.workload
    cost_model = ResourceCostModel()

    # 1. Platform-side history: a subset of the historical 1316-run dataset.
    history = RunHistoryStore()
    for i, row in enumerate(bundle.frame.head(200).iterrows()):
        history.add(
            RunRecord(
                run_id=f"hist-{i:04d}",
                application=workload.name,
                hardware=str(row["hardware"]),
                runtime_seconds=float(row["runtime_seconds"]),
                features={name: float(row[name]) for name in workload.feature_names},
            )
        )
    print(f"seeded run-history store with {len(history)} historical BP3D runs")

    # 2. Register the application; its recommender warm-starts from history.
    log = EventLog()
    service = RecommendationService(
        catalog=catalog,
        history=history,
        tolerance=ToleranceConfig(ratio=0.05, seconds=0.0),
        seed=7,
        log=log,
    )
    recommender = service.register_application(
        workload.name,
        owner="wifire",
        feature_names=workload.feature_names,
        description="QUIC-Fire prescribed burn simulations (BurnPro3D)",
    )
    print(f"warm-started observation counts: {recommender.observation_counts()}\n")

    # 3. Stream new simulations through the service.
    cluster = ClusterSimulator(workload=workload, catalog=catalog, seed=3)
    rng = np.random.default_rng(42)
    n_workflows = 40
    resource_seconds_used = 0.0
    resource_seconds_biggest = 0.0
    biggest = max(catalog, key=lambda hw: cost_model.footprint(hw))
    usage = {name: 0 for name in catalog.names}

    for _ in range(n_workflows):
        features = workload.sample_features(rng)
        ticket = service.run_workflow(workload.name, features, cluster)
        chosen = ticket.recommendation.hardware
        usage[chosen.name] += 1
        resource_seconds_used += cost_model.occupancy_cost(chosen, ticket.observed_runtime)
        biggest_runtime = workload.expected_runtime(features, biggest)
        resource_seconds_biggest += cost_model.occupancy_cost(biggest, biggest_runtime)

    print(f"submitted {n_workflows} burn-unit simulations through the service")
    print(f"recommendations per hardware: {usage}")
    saved = 1.0 - resource_seconds_used / resource_seconds_biggest
    print(
        f"resource-seconds vs always using {biggest.name}: "
        f"{resource_seconds_used:,.0f} vs {resource_seconds_biggest:,.0f} "
        f"({saved * 100:.1f}% saved)"
    )

    # 4. A peek at the service's decision log.
    print("\nlast three service decisions:")
    for record in log.filter(event="recommendation")[-3:]:
        print(f"  {record}")


if __name__ == "__main__":
    main()
