"""Placement study: the same workload under every node-choice policy.

Scheduling is two independent questions -- *which pod next* (the queue
discipline: FIFO, backfill, priority) and *which node* (placement).  This
example holds the first axis fixed and sweeps the second across the
pluggable policies of :mod:`repro.cluster.placement`:

* **first-fit** -- the pre-refactor default: first node with room;
* **best-fit** -- tightest fit, keeps contiguous capacity free;
* **spread** (worst-fit) -- emptiest node, minimises co-residency blindly;
* **pack** -- most-utilised node, the noisy-neighbour-maximising baseline;
* **least-slowdown** -- queries the cluster's interference model for the
  post-placement slowdown of the pod *and* its prospective co-residents
  and takes the cheapest node.

Two scenarios make the trade-offs visible:

* ``interference-heavy`` -- two identical 32-core nodes; capacity-only
  policies pile all six concurrent workflows onto the first one, while the
  interference-aware policy spreads and cuts mean slowdown by ~25%;
* ``hetero-nodes`` -- an ``io-noisy`` and a ``numa-quiet`` tier under a
  class-weighted slowdown (the noisy node hurts 10x more per co-resident):
  least-slowdown placement discovers the quiet tier without being told.

It closes with the reward-shaping analogue: the ``slowdown_inclusive``
reward mode trains the bandit on interference-penalised targets, the same
way the queue-aware mode charges queueing delay.

Run with::

    python examples/placement_study.py
"""

from __future__ import annotations

from repro.evaluation import build_scenario, run_scenario

POLICIES = ["first-fit", "best-fit", "spread", "pack", "least-slowdown"]


def sweep(scenario_name: str, seed: int = 0) -> dict:
    results = {}
    base = build_scenario(scenario_name, seed=seed)
    for policy in POLICIES:
        results[policy] = run_scenario(base.with_placement(policy)).summary()
    return results


def print_sweep(title: str, results: dict) -> None:
    header = (
        f"{'placement':<16} {'mean slowdown':>13} {'makespan':>10} "
        f"{'i-regret':>9} {'accuracy':>9}"
    )
    print(title)
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        summary = results[policy]
        print(
            f"{policy:<16} {summary['mean_slowdown']:>12.3f}x "
            f"{summary['makespan_seconds']:>9.0f}s "
            f"{summary['interference_inclusive_regret']:>8.0f}s "
            f"{summary['accuracy']:>9.3f}"
        )
    print()


def main() -> None:
    print("placement study (seed=0)\n")

    heavy = sweep("interference-heavy")
    print_sweep("interference-heavy: two identical nodes, strong slowdown", heavy)
    saved = heavy["pack"]["mean_slowdown"] - heavy["least-slowdown"]["mean_slowdown"]
    print(
        f"least-slowdown cuts mean slowdown {saved:.2f}x below pack "
        "by spreading onto the idle second node\n"
    )

    hetero = sweep("hetero-nodes")
    print_sweep("hetero-nodes: io-noisy vs numa-quiet interference classes", hetero)
    print(
        "capacity-only policies cannot tell the tiers apart (the nodes have "
        "equal capacity);\nleast-slowdown reads the class-weighted "
        "interference model and favours the quiet tier\n"
    )

    # Reward shaping: identical scenario and placement, but the bandit's
    # training target charges interference-inflicted seconds on top of the
    # observed runtime -- the slowdown analogue of queue-aware rewards.
    base = build_scenario("interference-heavy", seed=0)
    blind = run_scenario(base).summary()
    shaped = run_scenario(base.with_slowdown_feedback(slowdown_weight=1.0)).summary()
    print("slowdown-aware reward shaping (first-fit placement, same streams):")
    print(
        f"  runtime rewards           : mean slowdown {blind['mean_slowdown']:.3f}x, "
        f"i-regret {blind['interference_inclusive_regret']:.0f}s"
    )
    print(
        f"  slowdown-inclusive rewards: mean slowdown {shaped['mean_slowdown']:.3f}x, "
        f"i-regret {shaped['interference_inclusive_regret']:.0f}s"
    )
    print(
        "\nshaped tenants train on observed + weight * (observed - planned): "
        "arms that keep\nlanding amid noisy neighbours look slower to the "
        "bandit than their solo speed."
    )


if __name__ == "__main__":
    main()
