"""Interference study: the bandit under noisy neighbours vs zero contention.

The paper's datasets record each run executing *alone*, but co-located
tenants on a shared node compete for caches and memory bandwidth that
resource requests do not reserve.  The progress-based cluster engine models
this with pluggable interference models
(:mod:`repro.cluster.interference`): each pod advances at a rate set by its
co-residency, so the runtime the platform -- and the bandit -- observes is
the *inflated* one, not the contention-free draw.

This example contrasts three settings built from identical tenant streams:

* **zero-contention** -- the paper's protocol: every run alone, observed
  runtime equals the drawn ground truth bit for bit;
* **interference-heavy** -- six concurrent workflows packed onto one shared
  node under a strong linear slowdown: every observation is inflated and
  the interference-inclusive regret column charges the gap;
* **noisy-neighbor** -- a latency-sensitive tenant sharing a node with a
  greedy neighbour under per-resource capacity contention: how much the
  victim suffers depends on which arms the neighbour's bandit grabs.

Run with::

    python examples/interference_study.py
"""

from __future__ import annotations

from repro.evaluation import build_scenario, format_contention_report, run_scenario


def main() -> None:
    print("interference study (seed=0)\n")

    # The same heavy scenario with the interference model switched off is
    # the zero-contention counterfactual: identical tenants, streams and
    # seeds, so any difference is purely co-residency slowdown.
    heavy = build_scenario("interference-heavy", seed=0)
    contended = run_scenario(heavy)
    alone = run_scenario(heavy.with_interference(None))

    header = (
        f"{'setting':<18} {'mean slowdown':>13} {'max':>6} {'makespan':>10} "
        f"{'regret':>9} {'i-regret':>9}"
    )
    print(header)
    print("-" * len(header))
    for label, result in (("zero-contention", alone), ("interference-heavy", contended)):
        summary = result.summary()
        print(
            f"{label:<18} {summary['mean_slowdown']:>12.3f}x "
            f"{summary['max_slowdown']:>5.2f}x {summary['makespan_seconds']:>9.0f}s "
            f"{summary['cumulative_regret']:>8.0f}s "
            f"{summary['interference_inclusive_regret']:>8.0f}s"
        )

    inflated = contended.summary()["mean_slowdown"] > alone.summary()["mean_slowdown"]
    print(f"\nco-residency inflates observed runtimes: {inflated}")
    print(
        "the bandit learns from the inflated observations -- its per-arm "
        "models fit what\nthe shared cluster actually delivered, not the "
        "contention-free plan.\n"
    )

    noisy = run_scenario(build_scenario("noisy-neighbor", seed=0))
    print(format_contention_report(noisy))

    victim_rows = [row for row in noisy.rows if row["tenant"] == "latency-sensitive"]
    slowed = sum(1 for row in victim_rows if row["slowdown"] > 1.0)
    print(
        f"\nnoisy neighbour: {slowed}/{len(victim_rows)} victim workflows ran "
        "slower than their contention-free plan"
    )


if __name__ == "__main__":
    main()
