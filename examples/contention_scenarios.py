"""Cluster-in-the-loop evaluation: what contention does to recommendations.

The paper motivates BanditWare with the cost of resource misallocation on
*shared* platforms, but the classic evaluation protocol runs every workflow
alone.  This example plays the contention scenario suite through the queued
cluster simulator instead: every recommendation becomes a pod, pods from all
tenants share the same nodes, and completions reach each application's
recommender in event order.

Three things to look for in the output:

* **light** -- at ~10% utilisation queueing is negligible and the
  queue-inclusive regret is essentially the classic runtime regret;
* **saturated** -- a bursty campaign against one 8-core node queues for far
  longer than it computes, so the queue-inclusive regret dwarfs the
  runtime-only number the synchronous evaluation would report;
* **zero-contention** -- the queued path degenerates to the paper's loop: a
  parity check asserts the decision stream matches the synchronous reference
  decision for decision.

Run with::

    python examples/contention_scenarios.py
"""

from __future__ import annotations

from repro.evaluation import (
    build_scenario,
    format_contention_report,
    run_scenario,
    run_synchronous,
)


def main() -> None:
    print("contention scenario suite (seed=0)\n")
    header = (
        f"{'scenario':<16} {'workflows':>9} {'makespan':>10} {'mean queue':>11} "
        f"{'occupancy':>10} {'regret':>9} {'q-regret':>9}"
    )
    print(header)
    print("-" * len(header))
    for name in ("zero-contention", "light", "saturated", "mixed-tenants"):
        summary = run_scenario(build_scenario(name, seed=0)).summary()
        print(
            f"{name:<16} {summary['workflows']:>9.0f} {summary['makespan_seconds']:>9.0f}s "
            f"{summary['mean_queue_seconds']:>10.1f}s {summary['occupancy_cost']:>10.0f} "
            f"{summary['cumulative_regret']:>8.0f}s {summary['queue_inclusive_regret']:>8.0f}s"
        )

    print("\nqueueing turns small allocation mistakes into large latency regret:\n")
    print(format_contention_report(run_scenario(build_scenario("saturated", seed=0))))

    # The queued path is a strict generalisation of the paper's synchronous
    # loop: with one closed-loop tenant and effectively infinite capacity the
    # decision streams are identical.
    queued = run_scenario(build_scenario("zero-contention", seed=0))
    synchronous = run_synchronous(build_scenario("zero-contention", seed=0))
    matches = queued.tenants["solo"].decisions == synchronous.tenants["solo"].decisions
    print(f"\nzero-contention parity with the synchronous loop: {matches}")


if __name__ == "__main__":
    main()
