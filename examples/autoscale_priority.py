"""Autoscaling, priority/preemption and queue-aware rewards, end to end.

Three additions to the cluster-in-the-loop evaluation, each shown on its
registered scenario:

* **priority-tiers** -- a high-priority interactive tier shares one node with
  a bursty batch tier under the :class:`~repro.cluster.PriorityScheduler`.
  Interactive pods preempt batch pods; evictions are checkpoint-free
  requeues, so the batch tier pays both extra queueing and *wasted*
  resource-seconds, which the accounting reports separately.
* **autoscale-burst** -- a bursty campaign overflows one 8-core node backed
  by an :class:`~repro.cluster.AutoscalingNodePool`.  Scale-ups land after a
  provisioning delay (visible as queueing before each burst drains) and idle
  pool nodes are drained; the pool's provision-to-drain lifetime is charged
  through :meth:`~repro.hardware.ResourceCostModel.node_occupancy_cost`.
* **queue-feedback** -- the same campaign with the opt-in queue-inclusive
  reward mode (:class:`~repro.core.RewardConfig`): observed queueing delay
  inflates each arm's training target, so the bandit learns that the
  solo-fastest, node-hogging arm is *effectively* slower than the lean arm
  that packs four-per-node, and the queue-inclusive regret drops.

Run with::

    python examples/autoscale_priority.py
"""

from __future__ import annotations

from repro.evaluation import build_scenario, format_contention_report, run_scenario


def main() -> None:
    print("priority/preemption and autoscaling scenarios (seed=0)\n")

    # ------------------------------------------------------------------ #
    priority = run_scenario(build_scenario("priority-tiers", seed=0))
    print(format_contention_report(priority))
    queues = {}
    for row in priority.rows:
        queues.setdefault(str(row["tenant"]), []).append(float(row["queue_seconds"]))
    for tenant, delays in sorted(queues.items()):
        print(
            f"  {tenant:<18} mean queue {sum(delays) / len(delays):10.1f} s "
            f"over {len(delays)} workflows"
        )
    preempted = [row for row in priority.rows if int(row["preemptions"]) > 0]
    wasted = sum(float(row["wasted_seconds"]) for row in preempted)
    print(
        f"  preempted workflows: {len(preempted)} "
        f"(all batch-tier), {wasted:.0f} s of discarded execution\n"
    )

    # ------------------------------------------------------------------ #
    blind = run_scenario(build_scenario("autoscale-burst", seed=0))
    print(format_contention_report(blind))
    ups = sum(1 for e in blind.scale_events if e.kind == "node_provisioned")
    downs = sum(1 for e in blind.scale_events if e.kind == "node_drained")
    print(f"  pool nodes provisioned {ups}x, drained {downs}x\n")

    # ------------------------------------------------------------------ #
    aware = run_scenario(build_scenario("queue-feedback", seed=0))
    print(format_contention_report(aware))

    def lean_share(result):
        decisions = result.tenants["burst-campaign"].decisions
        return sum(d == "lean" for d in decisions) / len(decisions)

    blind_summary = blind.summary()
    aware_summary = aware.summary()
    print(
        f"\n  lean-arm share: {lean_share(blind):.0%} queue-blind -> "
        f"{lean_share(aware):.0%} queue-aware"
    )
    print(
        f"  queue-inclusive regret: {blind_summary['queue_inclusive_regret']:.0f} s "
        f"queue-blind -> {aware_summary['queue_inclusive_regret']:.0f} s queue-aware"
    )
    improved = (
        aware_summary["queue_inclusive_regret"] < blind_summary["queue_inclusive_regret"]
    )
    print(f"  queue-aware rewards reduce queue-inclusive regret: {improved}")


if __name__ == "__main__":
    main()
