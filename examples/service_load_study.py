"""Serving-layer study: skewed traffic through the sharded recommendation service.

The :class:`~repro.integration.RecommendationService` facade now fronts a
sharded serving core: applications are consistent-hashed onto independent
:class:`~repro.integration.ServiceShard`\\ s, requests queue behind a bounded
admission controller (overload is an explicit reject-with-retry-after, never
a silent drop), and a :class:`~repro.integration.RequestBatcher` coalesces
traffic into the batched entry points.  This study walks the full stack:

1. **Traffic mixes** -- Zipfian application skew, a flash crowd ("hotspot")
   and campaign-style bursts are driven through the shard layer at one and
   four shards via the event-driven load harness, reporting throughput and
   tail latency.  The harness runs real recommendations and real learning on
   a *simulated clock* anchored to this machine's calibrated per-request
   serving cost, so the shard comparison measures the architecture, not the
   container's core count.
2. **Backpressure** -- a deliberately undersized queue shows the explicit
   admission contract.
3. **Durability** -- the service is checkpointed mid-stream, restored, and
   both copies continue identically.

Run with::

    PYTHONPATH=src python examples/service_load_study.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import (
    ServiceLoadConfig,
    build_load_service,
    calibrate_cost_per_request,
    format_service_load_report,
    run_service_load,
)
from repro.integration import (
    AdmissionController,
    BackpressureError,
    RecommendationService,
)


def main() -> None:
    cost = calibrate_cost_per_request(seed=0)
    print(
        f"calibrated serving cost on this machine: {cost * 1e3:.3f} ms/request "
        f"({1.0 / cost:.0f} recommendations/sec per shard)\n"
    )

    # 1. The three benchmark mixes at one and four shards.
    for mix in ("zipfian", "hotspot", "bursty"):
        results = []
        for n_shards in (1, 4):
            config = ServiceLoadConfig(
                n_shards=n_shards,
                n_requests=800,
                cost_per_request=cost,
                saturation_shards=4,
            )
            results.append(run_service_load(mix, config))
        print(format_service_load_report(results))
        ratio = results[1].throughput_rps / results[0].throughput_rps
        print(f"=> {mix}: 4 shards serve {ratio:.2f}x the single-shard throughput\n")
    print(
        "consistent hashing is load-oblivious, so the speedup is capped at "
        "1/max_shard_share\nof the traffic: the Zipfian head limits it well "
        "below the 4x shard count, and the\nhotspot mix (one app going viral) "
        "pins a single shard by construction.\n"
    )

    # 2. Backpressure is explicit: a tiny queue rejects with retry-after.
    controller = AdmissionController(n_shards=1, capacity=4, drain_rate_per_second=1.0 / cost)
    for request in range(4):
        controller.admit(0, request)
    try:
        controller.admit(0, "one too many")
    except BackpressureError as error:
        print(
            "backpressure contract: admission rejected with "
            f"retry_after={error.retry_after_seconds * 1e3:.2f} ms "
            f"(queue {error.queue_depth}/{error.capacity}; nothing dropped silently)\n"
        )

    # 3. Checkpoint mid-stream, restore, and continue identically.
    config = ServiceLoadConfig(n_apps=8, n_shards=2, seed=0)
    service, workloads = build_load_service(config)
    rng = np.random.default_rng(0)
    apps = list(workloads)
    for i in range(40):
        app = apps[i % len(apps)]
        ticket = service.submit_workflow(app, workloads[app].sample_features(rng))
        runtime = workloads[app].observed_runtime(
            ticket.features, ticket.recommendation.hardware, rng
        )
        service.complete_workflow(ticket.ticket_id, runtime)
    restored = RecommendationService.restore(service.checkpoint())
    probe = workloads[apps[0]].sample_features(rng)
    original_pick = service.submit_workflow(apps[0], probe)
    restored_pick = restored.submit_workflow(apps[0], probe)
    assert original_pick.recommendation.hardware.name == restored_pick.recommendation.hardware.name
    assert original_pick.ticket_id == restored_pick.ticket_id
    print(
        "durability: after 40 completed workflows, checkpoint -> restore -> "
        "resume picks the\nsame hardware "
        f"({restored_pick.recommendation.hardware.name}) and issues the same "
        f"ticket id ({restored_pick.ticket_id}) as the original."
    )


if __name__ == "__main__":
    main()
