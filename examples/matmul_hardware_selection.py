"""Experiment 3 walkthrough: matrix multiplication and the tolerance knobs.

The matrix-squaring application is the paper's hardware-sensitive stress test:
its runtime is dominated by matrix size, small matrices finish in seconds on
any configuration, and large ones genuinely benefit from more cores.  This
example

* executes the *real* tiled matrix-squaring kernel at a few small sizes to
  show the application the synthetic model stands in for,
* shows where the best hardware crosses over as the matrix grows, and
* compares strict selection against ``tolerance_seconds=20`` /
  ``tolerance_ratio=5%`` selection, the trade-off behind Figures 9-12.

Run with::

    python examples/matmul_hardware_selection.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import BanditWare, MatrixMultiplicationWorkload, ToleranceConfig, matmul_catalog
from repro.hardware import ResourceCostModel
from repro.workloads import tiled_matrix_square


def run_real_kernel() -> None:
    print("real tiled matrix-squaring kernel (small sizes):")
    rng = np.random.default_rng(0)
    for size in (128, 256, 512):
        matrix = rng.integers(0, 100, size=(size, size)).astype(float)
        start = time.perf_counter()
        result = tiled_matrix_square(matrix, tile_size=128, n_workers=4)
        elapsed = time.perf_counter() - start
        assert np.allclose(result, matrix @ matrix)
        print(f"  size={size:>5}: {elapsed * 1000:7.1f} ms (matches A @ A)")
    print()


def show_crossover(workload: MatrixMultiplicationWorkload) -> None:
    catalog = matmul_catalog()
    print("expected runtime (s) by matrix size and hardware (note the crossover):")
    header = "  size " + " ".join(f"{hw.name:>9}" for hw in catalog)
    print(header)
    for size in (500, 1500, 3000, 5000, 8000, 12500):
        features = {"size": float(size), "sparsity": 0.0, "min_value": 0, "max_value": 100}
        runtimes = [workload.expected_runtime(features, hw) for hw in catalog]
        best = int(np.argmin(runtimes))
        cells = " ".join(
            f"{'*' if i == best else ' '}{rt:8.1f}" for i, rt in enumerate(runtimes)
        )
        print(f"  {size:>5} {cells}")
    print("  (* = fastest configuration)\n")


def online_selection(workload: MatrixMultiplicationWorkload, tolerance: ToleranceConfig, label: str) -> None:
    catalog = matmul_catalog()
    cost_model = ResourceCostModel()
    bandit = BanditWare(
        catalog=catalog, feature_names=["size"], tolerance=tolerance, seed=11
    )
    rng = np.random.default_rng(5)
    correct_within_tolerance = 0
    footprint = 0.0
    n_rounds = 150
    for _ in range(n_rounds):
        features = workload.sample_features(rng)
        context = {"size": features["size"]}
        recommendation = bandit.recommend(context)
        runtime = workload.observed_runtime(features, recommendation.hardware, rng)
        bandit.observe(context, recommendation.hardware, runtime)

        truth = {hw.name: workload.expected_runtime(features, hw) for hw in catalog}
        limit = (1.0 + tolerance.ratio) * min(truth.values()) + tolerance.seconds
        correct_within_tolerance += int(truth[recommendation.hardware.name] <= limit)
        footprint += cost_model.footprint(recommendation.hardware)

    print(
        f"{label:<28} accuracy-within-tolerance={correct_within_tolerance / n_rounds:.2f} "
        f"mean-footprint={footprint / n_rounds:.2f} CPU-equivalents"
    )


def main() -> None:
    run_real_kernel()
    workload = MatrixMultiplicationWorkload()
    show_crossover(workload)

    print("online selection over 150 matrix workflows (higher accuracy, lower footprint = better):")
    online_selection(workload, ToleranceConfig(), "strict (no tolerance)")
    online_selection(workload, ToleranceConfig(seconds=20.0), "tolerance_seconds = 20")
    online_selection(workload, ToleranceConfig(ratio=0.05), "tolerance_ratio = 5%")


if __name__ == "__main__":
    main()
