"""Quickstart: online hardware recommendation with BanditWare.

This example mirrors the paper's core loop (Algorithm 1) on a small synthetic
workload whose runtime really is linear in its features:

1. create a hardware catalog (the NDP triple used in the paper),
2. create a ``BanditWare`` recommender,
3. stream workflows through recommend → execute → observe,
4. watch the recommendations converge to the genuinely fastest hardware.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BanditWare,
    DecayingEpsilonGreedyPolicy,
    LinearRuntimeWorkload,
    ndp_catalog,
)


def main() -> None:
    catalog = ndp_catalog()
    print("Hardware catalog (the paper's NDP triple):")
    for hw in catalog:
        print(f"  {hw}")

    # A workload whose best hardware is H1 for every input, but the bandit
    # does not know that: it has to discover it online.
    workload = LinearRuntimeWorkload(
        feature_ranges={"input_size": (1.0, 100.0)},
        coefficients={
            "H0": ({"input_size": 3.0}, 30.0),
            "H1": ({"input_size": 1.0}, 25.0),
            "H2": ({"input_size": 2.0}, 20.0),
        },
        noise_sigma=5.0,
    )

    # The paper's algorithm with a slightly faster ε decay so convergence is
    # visible within this short demo (the paper uses decay=0.99 over more rounds).
    recommender = BanditWare(
        catalog=catalog,
        feature_names=["input_size"],
        policy=DecayingEpsilonGreedyPolicy(epsilon0=1.0, decay=0.92),
        seed=42,
    )

    rng = np.random.default_rng(0)
    n_rounds = 80
    decisions = []
    for round_index in range(1, n_rounds + 1):
        features = workload.sample_features(rng)
        recommendation = recommender.recommend(features)
        runtime = workload.observed_runtime(features, recommendation.hardware, rng)
        recommender.observe(features, recommendation.hardware, runtime)

        best = workload.best_hardware(features, catalog)
        decisions.append(recommendation.hardware.name == best.name)
        if round_index % 10 == 0:
            print(
                f"round {round_index:>3}: chose {recommendation.hardware.name} "
                f"(best={best.name}, explored={recommendation.explored}, "
                f"epsilon={recommender.policy.epsilon:.3f}, runtime={runtime:.1f}s)"
            )

    overall = sum(decisions) / n_rounds
    recent = sum(decisions[-20:]) / 20
    print(f"\naccuracy over all {n_rounds} rounds: {overall:.2f} (includes the exploration phase)")
    print(f"accuracy over the last 20 rounds:  {recent:.2f}")
    print("\nlearned per-hardware runtime models (w·x + b):")
    for hardware, coefficients in recommender.coefficients().items():
        terms = ", ".join(f"{k}={v:.2f}" for k, v in coefficients.items())
        print(f"  {hardware}: {terms}")

    example_features = {"input_size": 50.0}
    print(f"\npredicted runtimes for input_size=50: ")
    for hardware, runtime in recommender.predict_runtimes(example_features).items():
        print(f"  {hardware}: {runtime:.1f}s")
    print(f"recommended hardware: {recommender.best_hardware(example_features).name}")


if __name__ == "__main__":
    main()
