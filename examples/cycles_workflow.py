"""Experiment 1 walkthrough: the Cycles agroecosystem workflow.

Reproduces the setting behind Figures 3 and 4 of the paper: 80 Cycles runs of
two sizes (100 and 500 tasks) on four synthetic hardware settings with a clear
performance trade-off.  The script

* generates the dataset,
* fits the full-data per-hardware linear models (the diamond markers of
  Figure 3),
* runs the BanditWare online simulation with a 20 s tolerance, and
* prints the per-round RMSE/accuracy series (the data behind Figure 4).

Run with::

    python examples/cycles_workflow.py
"""

from __future__ import annotations

from repro.baselines import FullFitOracle
from repro.data import build_cycles_dataset
from repro.evaluation import (
    SimulationConfig,
    OnlineSimulation,
    format_series,
)


def main() -> None:
    bundle = build_cycles_dataset()
    print(f"dataset: {bundle.n_runs} Cycles runs on {len(bundle.catalog)} synthetic hardware settings")
    print(f"runs per hardware: {bundle.per_hardware_counts()}\n")

    # ------------------------------------------------------------------ #
    # Figure 3: the per-hardware linear fits makespan = w * num_tasks + b.
    # ------------------------------------------------------------------ #
    oracle = FullFitOracle(bundle.frame, bundle.catalog, ["num_tasks"])
    print("per-hardware linear fits (Figure 3) vs the generator's ground truth:")
    print(f"{'hardware':>8} {'fitted w':>10} {'true w':>10} {'fitted b':>10} {'true b':>10}")
    for hw in bundle.catalog:
        fitted = oracle.model_for(hw).coefficient_dict(["num_tasks"])
        truth = bundle.workload.true_coefficients(hw)
        print(
            f"{hw.name:>8} {fitted['w_num_tasks']:>10.2f} {truth['w_num_tasks']:>10.2f} "
            f"{fitted['b']:>10.1f} {truth['b']:>10.1f}"
        )
    print(
        "\npredicted makespan for a 500-task workflow per hardware: "
        + ", ".join(
            f"{hw.name}={oracle.model_for(hw).predict([500.0]):.0f}s" for hw in bundle.catalog
        )
    )

    # ------------------------------------------------------------------ #
    # Figure 4: RMSE and accuracy of the online bandit over 100 rounds,
    # 10 simulations, tolerance_seconds = 20.
    # ------------------------------------------------------------------ #
    config = SimulationConfig(
        n_rounds=100, n_simulations=10, tolerance_seconds=20.0, seed=0
    )
    simulation = OnlineSimulation(
        workload=bundle.workload,
        catalog=bundle.catalog,
        evaluation_frame=bundle.frame,
        config=config,
        feature_names=["num_tasks"],
    )
    result = simulation.run()
    print("\n" + format_series(result, every=10, title="BanditWare on Cycles (Figure 4)"))
    for round_index in (20, 40):
        mean_rmse, _ = result.rmse_at(round_index)
        print(
            f"after {round_index} rounds: bandit RMSE {mean_rmse:.1f}s vs full-dataset fit "
            f"{result.reference_rmse:.1f}s ({result.rmse_gap_to_reference(round_index) * 100:.1f}% gap), "
            f"accuracy {result.accuracy_at(round_index)[0]:.2f}"
        )


if __name__ == "__main__":
    main()
